//! The backbone evaluation & comparison engine behind `backbone compare`.
//!
//! The paper's core argument is not just the Noise-Corrected estimator but
//! its *evaluation methodology* (Section V): methods are compared **at
//! matched edge coverage** — every method is asked for the same number of
//! edges — on node coverage, connectivity, and robustness to multiplicative
//! noise. This module packages that methodology as a reusable engine:
//!
//! * [`ComparisonConfig`] — which methods, the matched edge share, and the
//!   noise Monte Carlo parameters;
//! * [`Comparison::run`] — score each method, select at matched coverage,
//!   and compute every metric;
//! * [`Comparison::run_with_scores`] — the same, but scoring through a
//!   caller-supplied source of [`ScoredEdges`] (the HTTP server passes its
//!   `(graph, method)` scored-edge cache here, so a repeated comparison
//!   never re-scores);
//! * [`ComparisonReport`] — per-method coverage/connectivity/degree metrics,
//!   a pairwise Jaccard agreement matrix, noise stability, and the wall time
//!   of each method's scoring pass, renderable as a text table
//!   ([`ComparisonReport::render_table`]), as JSON with the timings
//!   ([`ComparisonReport::to_json`]), or as **stable JSON**
//!   ([`ComparisonReport::to_json_stable`]: a pure function of graph and
//!   config, so the CLI and a cache-hit server response emit identical
//!   bytes).
//!
//! Noise stability is a Monte Carlo: the graph's weights are perturbed
//! multiplicatively ([`multiplicative_resample`]) `noise_resamples` times,
//! each resample is re-scored and re-selected at the same matched size, and
//! the metric is the mean Jaccard similarity between the original and the
//! perturbed backbone. Resamples run in parallel via
//! [`backboning_parallel::par_map`] with per-trial seeds and a sequential
//! trial-order mean, so the result is bit-identical at any thread count.
//!
//! ```
//! use backboning::Method;
//! use backboning_eval::comparison::{Comparison, ComparisonConfig};
//! use backboning_graph::generators::complete_graph;
//!
//! let graph = complete_graph(8, 2.0).unwrap(); // 28 edges
//! let config = ComparisonConfig {
//!     methods: vec![Method::NaiveThreshold, Method::NoiseCorrected],
//!     noise_resamples: 2,
//!     ..ComparisonConfig::default()
//! };
//! let report = Comparison::new(config).unwrap().run(&graph).unwrap();
//! assert_eq!(report.matched_edges, 3); // round(0.1 × 28)
//! assert_eq!(report.methods.len(), 2);
//! assert_eq!(report.jaccard[0][0], Some(1.0));
//! assert!(report.to_json().contains("\"noise_stability\""));
//! ```

use std::sync::Arc;
use std::time::Instant;

use backboning::error::{BackboneError, BackboneResult};
use backboning::json::{self, JsonArray, JsonObject};
use backboning::pipeline::matched_edge_count;
use backboning::{Method, Pipeline, ScoredEdges, ThresholdPolicy};
use backboning_graph::algorithms::union_find::UnionFind;
use backboning_graph::{GraphView, WeightedGraph};
use backboning_parallel::par_map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::recovery::jaccard_index;
use crate::report::{fmt3, fmt_opt, TextTable};

/// The methods `backbone compare` evaluates when none are requested: the
/// three tunable statistical methods the selection guide weighs against each
/// other. The parameter-free methods (MST, DS) and the naive baseline can be
/// added explicitly (`--methods all` compares every registered method).
pub const DEFAULT_METHODS: [Method; 3] = [
    Method::NoiseCorrected,
    Method::DisparityFilter,
    Method::HighSalienceSkeleton,
];

/// Configuration of a backbone comparison run.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonConfig {
    /// The methods to compare, in report order (no duplicates).
    pub methods: Vec<Method>,
    /// The matched edge coverage: every method keeps `round(top_share × E)`
    /// edges (parameter-free methods keep their fixed set). In `[0, 1]`.
    pub top_share: f64,
    /// Magnitude of the multiplicative noise: each resample multiplies every
    /// edge weight by an independent uniform factor in
    /// `[1 − noise_level, 1 + noise_level]`. In `[0, 1)`.
    pub noise_level: f64,
    /// Number of Monte Carlo noise resamples (`0` skips the stability
    /// metric entirely).
    pub noise_resamples: usize,
    /// Base seed of the noise Monte Carlo; resample `i` derives its own
    /// generator from `(seed, i)`, so results are reproducible.
    pub seed: u64,
    /// Worker threads for scoring and for the noise trials (`0` = automatic,
    /// honouring `BACKBONING_THREADS`). Results are bit-identical at any
    /// setting.
    pub threads: usize,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            methods: DEFAULT_METHODS.to_vec(),
            top_share: 0.1,
            noise_level: 0.1,
            noise_resamples: 8,
            seed: 4242,
            threads: 0,
        }
    }
}

/// Parse a comma-separated method list (`"nc,df,hss"`). Accepts every name
/// [`Method::parse`] accepts, plus the single word `all` for the full
/// seven-method registry. Rejects empty lists, unknown names and duplicates.
///
/// ```
/// use backboning::Method;
/// use backboning_eval::comparison::parse_method_list;
///
/// assert_eq!(
///     parse_method_list("nc, df").unwrap(),
///     vec![Method::NoiseCorrected, Method::DisparityFilter]
/// );
/// assert_eq!(parse_method_list("all").unwrap().len(), 7);
/// assert!(parse_method_list("nc,bogus").is_err());
/// assert!(parse_method_list("nc,nc").is_err());
/// ```
pub fn parse_method_list(spec: &str) -> Result<Vec<Method>, String> {
    if spec.trim().eq_ignore_ascii_case("all") {
        return Ok(Method::every().to_vec());
    }
    let mut methods = Vec::new();
    for name in spec.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("empty method name in `{spec}`"));
        }
        let method = Method::parse(name).ok_or_else(|| {
            format!("unknown method `{name}` (expected one of: nc, ncb, df, hss, ds, mst, naive, or `all`)")
        })?;
        if methods.contains(&method) {
            return Err(format!(
                "duplicate method `{}` in `{spec}`",
                method.cli_name()
            ));
        }
        methods.push(method);
    }
    if methods.is_empty() {
        return Err("at least one method is required".to_string());
    }
    Ok(methods)
}

/// `graph` with every edge weight multiplied by an independent uniform
/// factor in `[1 − level, 1 + level]` — the multiplicative-noise resample of
/// the stability Monte Carlo. Nodes, edge endpoints and edge *indices* are
/// preserved exactly, so edge-index sets of the original and the resampled
/// graph are directly comparable. Deterministic for a given `seed`.
pub fn multiplicative_resample<G: GraphView>(graph: &G, level: f64, seed: u64) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize, f64)> = graph
        .edges()
        .map(|edge| {
            let factor = 1.0 - level + 2.0 * level * rng.random::<f64>();
            (edge.source, edge.target, edge.weight * factor)
        })
        .collect();
    WeightedGraph::from_edges(graph.direction(), graph.node_count(), edges)
        .expect("a perturbed copy of a valid graph is valid")
}

/// The per-method metrics of a comparison, all computed on the backbone
/// selected at matched edge coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodMetrics {
    /// Edges actually kept (equals the matched target for tunable methods;
    /// the fixed set size for MST/DS).
    pub edges: usize,
    /// Kept edges as a share of the original edges.
    pub edge_share: f64,
    /// Share of originally non-isolated nodes keeping at least one edge —
    /// the paper's Topology/coverage criterion (Figure 7).
    pub node_coverage: f64,
    /// Kept edge weight as a share of the total edge weight.
    pub weight_share: f64,
    /// Number of connected components among the covered nodes (isolated
    /// nodes are not counted as components; `0` for an empty backbone).
    pub components: usize,
    /// Nodes of the largest backbone component as a share of the originally
    /// non-isolated nodes.
    pub largest_component_share: f64,
    /// Minimum degree over the covered nodes (`0` for an empty backbone).
    pub degree_min: usize,
    /// Mean degree over the covered nodes.
    pub degree_mean: f64,
    /// Maximum degree over the covered nodes.
    pub degree_max: usize,
    /// Mean Jaccard similarity between this backbone and the backbone
    /// re-extracted from each multiplicative-noise resample; `None` when the
    /// Monte Carlo was skipped (`noise_resamples = 0`) or every resample
    /// failed for this method.
    pub noise_stability: Option<f64>,
}

/// A measured wall time in milliseconds.
///
/// Compares equal to **any** other value: a timing is a measurement, not
/// part of a report's identity, so the derived `PartialEq` on the report
/// types keeps meaning "same backbone result" — the thread-invariance and
/// CSR-parity tests rely on that, the same way `wall_ms` is excluded from
/// the pipeline's stable summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallMillis(pub f64);

impl PartialEq for WallMillis {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// One method's entry in a [`ComparisonReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// The method compared.
    pub method: Method,
    /// The kept edge indices at matched coverage, in ranking order (empty
    /// when the method failed).
    pub kept: Vec<usize>,
    /// Wall time of this method's scoring pass alone (selection and metrics
    /// excluded). Against a score cache this is the cache-lookup time, which
    /// is exactly the point of reporting it. Excluded from report equality
    /// and from the stable JSON (see [`WallMillis`]).
    pub score_wall_ms: WallMillis,
    /// The computed metrics, or the scoring/selection error (e.g. Doubly
    /// Stochastic on a graph with no feasible scaling).
    pub metrics: Result<MethodMetrics, String>,
}

/// The full result of a [`Comparison`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    /// Node count of the compared graph.
    pub nodes: usize,
    /// Edge count of the compared graph.
    pub edges: usize,
    /// The matched edge share of the run.
    pub top_share: f64,
    /// The matched edge target: `round(top_share × edges)`.
    pub matched_edges: usize,
    /// The multiplicative-noise magnitude of the stability Monte Carlo.
    pub noise_level: f64,
    /// Number of noise resamples (0 = stability skipped).
    pub noise_resamples: usize,
    /// Base seed of the noise Monte Carlo.
    pub seed: u64,
    /// One entry per compared method, in configuration order.
    pub methods: Vec<MethodReport>,
    /// Pairwise Jaccard agreement between the methods' kept edge sets,
    /// indexed `[row][column]` in the order of [`ComparisonReport::methods`];
    /// `None` where either method failed.
    pub jaccard: Vec<Vec<Option<f64>>>,
}

impl ComparisonReport {
    /// The report of one method, if it was part of the comparison.
    pub fn method_report(&self, method: Method) -> Option<&MethodReport> {
        self.methods.iter().find(|report| report.method == method)
    }

    /// The report as JSON, *including* each method's `score_wall_ms` timing
    /// (three fixed decimals, last field of each method object). Everything
    /// except the timings is deterministic; callers that need byte-stable
    /// output (the server cache, the golden tests) use
    /// [`ComparisonReport::to_json_stable`] instead — the same split as the
    /// pipeline's `summary_json` / `summary_json_stable`.
    pub fn to_json(&self) -> String {
        self.json_body(true)
    }

    /// The report as a stable JSON document: a pure function of the graph
    /// and the configuration (no wall times), so two runs with the same
    /// inputs — CLI or server, cold or cache-hit — produce byte-identical
    /// output. Computed metrics are emitted with six fixed decimals.
    pub fn to_json_stable(&self) -> String {
        self.json_body(false)
    }

    fn json_body(&self, include_timing: bool) -> String {
        let mut input = JsonObject::inline();
        input.usize("nodes", self.nodes).usize("edges", self.edges);
        let mut noise = JsonObject::inline();
        noise
            .f64("level", self.noise_level)
            .usize("resamples", self.noise_resamples)
            .u64("seed", self.seed);

        let mut methods = JsonArray::new();
        for report in &self.methods {
            let mut object = JsonObject::inline();
            object.string("method", report.method.cli_name());
            match &report.metrics {
                Err(error) => {
                    object.string("error", error);
                }
                Ok(metrics) => {
                    let mut degree = JsonObject::inline();
                    degree
                        .usize("min", metrics.degree_min)
                        .f64_fixed("mean", metrics.degree_mean, 6)
                        .usize("max", metrics.degree_max);
                    object
                        .usize("edges", metrics.edges)
                        .f64_fixed("edge_share", metrics.edge_share, 6)
                        .f64_fixed("node_coverage", metrics.node_coverage, 6)
                        .f64_fixed("weight_share", metrics.weight_share, 6)
                        .usize("components", metrics.components)
                        .f64_fixed(
                            "largest_component_share",
                            metrics.largest_component_share,
                            6,
                        )
                        .raw("degree", &degree.finish())
                        .raw(
                            "noise_stability",
                            &match metrics.noise_stability {
                                Some(value) => json::number_fixed(value, 6),
                                None => "null".to_string(),
                            },
                        );
                }
            }
            if include_timing {
                object.f64_fixed("score_wall_ms", report.score_wall_ms.0, 3);
            }
            methods.raw(&object.finish());
        }

        let mut jaccard = JsonArray::new();
        for row in &self.jaccard {
            let mut rendered = JsonArray::new();
            for entry in row {
                match entry {
                    Some(value) => rendered.raw(&json::number_fixed(*value, 6)),
                    None => rendered.raw("null"),
                };
            }
            jaccard.raw(&rendered.finish());
        }

        let mut body = JsonObject::pretty();
        body.raw("input", &input.finish())
            .f64("top_share", self.top_share)
            .usize("matched_edges", self.matched_edges)
            .raw("noise", &noise.finish())
            .raw("methods", &methods.finish())
            .raw("jaccard", &jaccard.finish());
        body.finish()
    }

    /// The report as human-readable text: a headline, one metrics table
    /// (methods × criteria), and the pairwise Jaccard agreement matrix.
    pub fn render_table(&self) -> String {
        let mut output = format!(
            "Backbone comparison — {} nodes, {} edges, matched at top {} of edges ({} edges)\n",
            self.nodes, self.edges, self.top_share, self.matched_edges
        );
        if self.noise_resamples > 0 {
            output.push_str(&format!(
                "noise stability: mean self-Jaccard over {} multiplicative resamples at ±{} (seed {})\n",
                self.noise_resamples, self.noise_level, self.seed
            ));
        }
        output.push('\n');

        let mut table = TextTable::new(vec![
            "method",
            "edges",
            "edge share",
            "node cov",
            "weight share",
            "comps",
            "lcc share",
            "deg min/mean/max",
            "stability",
            "score ms",
        ]);
        for report in &self.methods {
            match &report.metrics {
                Ok(metrics) => table.add_row(vec![
                    report.method.short_name().to_string(),
                    metrics.edges.to_string(),
                    fmt3(metrics.edge_share),
                    fmt3(metrics.node_coverage),
                    fmt3(metrics.weight_share),
                    metrics.components.to_string(),
                    fmt3(metrics.largest_component_share),
                    format!(
                        "{}/{}/{}",
                        metrics.degree_min,
                        fmt3(metrics.degree_mean),
                        metrics.degree_max
                    ),
                    fmt_opt(metrics.noise_stability),
                    fmt3(report.score_wall_ms.0),
                ]),
                Err(error) => table.add_row(vec![
                    report.method.short_name().to_string(),
                    format!("failed: {error}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    fmt3(report.score_wall_ms.0),
                ]),
            }
        }
        output.push_str(&table.render());

        output.push_str("\nPairwise Jaccard agreement of the kept edge sets\n");
        let mut header = vec![String::new()];
        header.extend(
            self.methods
                .iter()
                .map(|report| report.method.short_name().to_string()),
        );
        let mut agreement = TextTable::new(header);
        for (report, row) in self.methods.iter().zip(&self.jaccard) {
            let mut cells = vec![report.method.short_name().to_string()];
            cells.extend(row.iter().map(|&entry| fmt_opt(entry)));
            agreement.add_row(cells);
        }
        output.push_str(&agreement.render());
        output
    }
}

/// A configured comparison run — see the [module docs](self) for the
/// methodology and an example.
#[derive(Debug, Clone)]
pub struct Comparison {
    config: ComparisonConfig,
}

impl Comparison {
    /// Validate a configuration. Rejects an empty or duplicated method list,
    /// a `top_share` outside `[0, 1]`, and a `noise_level` outside `[0, 1)`
    /// (a level of 1 could zero out an edge weight, which a weighted graph
    /// cannot represent).
    pub fn new(config: ComparisonConfig) -> BackboneResult<Comparison> {
        if config.methods.is_empty() {
            return Err(BackboneError::InvalidParameter {
                parameter: "methods",
                message: "at least one method is required".to_string(),
            });
        }
        for (index, method) in config.methods.iter().enumerate() {
            if config.methods[..index].contains(method) {
                return Err(BackboneError::InvalidParameter {
                    parameter: "methods",
                    message: format!("duplicate method `{}`", method.cli_name()),
                });
            }
        }
        if !(0.0..=1.0).contains(&config.top_share) {
            return Err(BackboneError::InvalidParameter {
                parameter: "top_share",
                message: format!("must lie in [0, 1], got {}", config.top_share),
            });
        }
        if !(0.0..1.0).contains(&config.noise_level) {
            return Err(BackboneError::InvalidParameter {
                parameter: "noise_level",
                message: format!("must lie in [0, 1), got {}", config.noise_level),
            });
        }
        Ok(Comparison { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &ComparisonConfig {
        &self.config
    }

    /// Run the comparison, scoring every method on `graph` directly.
    pub fn run<G: GraphView + Sync>(&self, graph: &G) -> BackboneResult<ComparisonReport> {
        self.run_with_scores(graph, |method| {
            method
                .score_with_threads(graph, self.config.threads)
                .map(Arc::new)
        })
    }

    /// Run the comparison, obtaining each method's [`ScoredEdges`] from
    /// `scores` — the score-once entry point. The HTTP server passes its
    /// `(graph, method)` scored-edge cache here, so an N-method comparison
    /// costs at most N scoring passes *ever*, shared with every `/backbone`
    /// query; only the noise resamples (perturbed copies of the graph) are
    /// re-scored, and those cannot be cached.
    ///
    /// Per-method failures (scoring or selection errors) are captured in the
    /// report rather than failing the run; an `Err` here means the
    /// comparison itself was impossible (invalid matched share).
    pub fn run_with_scores<G, F>(
        &self,
        graph: &G,
        mut scores: F,
    ) -> BackboneResult<ComparisonReport>
    where
        G: GraphView + Sync,
        F: FnMut(Method) -> BackboneResult<Arc<ScoredEdges>>,
    {
        let matched = matched_edge_count(graph.edge_count(), self.config.top_share)?;
        let mut score_wall: Vec<WallMillis> = Vec::with_capacity(self.config.methods.len());
        let selections: Vec<Result<Vec<usize>, String>> = self
            .config
            .methods
            .iter()
            .map(|&method| {
                let pipeline = Pipeline::new(method, ThresholdPolicy::TopK(matched))
                    .with_threads(self.config.threads);
                // Time the scoring pass alone: against a cache `scores` is a
                // lookup and the near-zero reading is the interesting datum.
                let start = Instant::now();
                let scored = scores(method);
                score_wall.push(WallMillis(start.elapsed().as_secs_f64() * 1e3));
                scored
                    .and_then(|scored| pipeline.select(graph, &scored))
                    .map_err(|error| error.to_string())
            })
            .collect();

        let stability = self.noise_stability(graph, matched, &selections);

        let methods: Vec<MethodReport> = self
            .config
            .methods
            .iter()
            .zip(selections.iter())
            .zip(stability)
            .zip(score_wall)
            .map(
                |(((&method, selection), noise_stability), score_wall_ms)| match selection {
                    Ok(kept) => MethodReport {
                        method,
                        kept: kept.clone(),
                        score_wall_ms,
                        metrics: Ok(backbone_metrics(graph, kept, noise_stability)),
                    },
                    Err(error) => MethodReport {
                        method,
                        kept: Vec::new(),
                        score_wall_ms,
                        metrics: Err(error.clone()),
                    },
                },
            )
            .collect();

        let jaccard = selections
            .iter()
            .map(|row| {
                selections
                    .iter()
                    .map(|column| match (row, column) {
                        (Ok(a), Ok(b)) => Some(jaccard_index(a, b)),
                        _ => None,
                    })
                    .collect()
            })
            .collect();

        Ok(ComparisonReport {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            top_share: self.config.top_share,
            matched_edges: matched,
            noise_level: self.config.noise_level,
            noise_resamples: self.config.noise_resamples,
            seed: self.config.seed,
            methods,
            jaccard,
        })
    }

    /// The noise-stability Monte Carlo: one mean self-Jaccard per method
    /// (aligned with the config's method list). Each trial perturbs the
    /// graph once ([`multiplicative_resample`], so every method sees the
    /// *same* perturbed weights — a fair comparison), re-scores every method
    /// sequentially inside the trial, and re-selects at the matched size.
    /// Trials fan out via [`par_map`] (order-preserving) and the per-method
    /// means are accumulated in trial order on the calling thread, so the
    /// result is bit-identical at any thread count.
    fn noise_stability<G: GraphView + Sync>(
        &self,
        graph: &G,
        matched: usize,
        selections: &[Result<Vec<usize>, String>],
    ) -> Vec<Option<f64>> {
        if self.config.noise_resamples == 0 || graph.edge_count() == 0 {
            return vec![None; self.config.methods.len()];
        }
        let trials: Vec<u64> = (0..self.config.noise_resamples as u64).collect();
        let per_trial: Vec<Vec<Option<f64>>> =
            par_map(&trials, self.config.threads, |_, &trial| {
                let noisy = multiplicative_resample(
                    graph,
                    self.config.noise_level,
                    self.config.seed.wrapping_add(trial),
                );
                self.config
                    .methods
                    .iter()
                    .zip(selections.iter())
                    .map(|(&method, selection)| {
                        let base = selection.as_ref().ok()?;
                        // Inner scoring stays sequential: the Monte Carlo already
                        // fans out across trials.
                        let pipeline =
                            Pipeline::new(method, ThresholdPolicy::TopK(matched)).with_threads(1);
                        let scored = pipeline.score(&noisy).ok()?;
                        let kept = pipeline.select(&noisy, &scored).ok()?;
                        Some(jaccard_index(base, &kept))
                    })
                    .collect()
            });
        (0..self.config.methods.len())
            .map(|column| {
                let mut sum = 0.0;
                let mut count = 0usize;
                for trial in &per_trial {
                    if let Some(value) = trial[column] {
                        sum += value;
                        count += 1;
                    }
                }
                (count > 0).then(|| sum / count as f64)
            })
            .collect()
    }
}

/// Compute the coverage/connectivity/degree metrics of one kept edge set.
///
/// Runs directly on the kept edge ids with a union–find over the original
/// node set — the backbone subgraph is never materialized, so a comparison
/// on a multi-million-edge [`backboning_graph::CsrGraph`] costs one degree
/// array and one union–find, not an adjacency-map copy per method.
fn backbone_metrics<G: GraphView>(
    graph: &G,
    kept: &[usize],
    noise_stability: Option<f64>,
) -> MethodMetrics {
    let node_count = graph.node_count();
    let directed = graph.is_directed();
    // Backbone degrees, matching `WeightedGraph::degree` semantics exactly:
    // directed = out + in (a self-loop counts twice), undirected = incident
    // edges (a self-loop counts once).
    let mut degrees = vec![0usize; node_count];
    let mut union_find = UnionFind::new(node_count);
    let mut kept_weight = 0.0;
    for &index in kept {
        let edge = graph
            .edge(index)
            .expect("kept indices come from this graph");
        kept_weight += edge.weight;
        degrees[edge.source] += 1;
        if directed || edge.source != edge.target {
            degrees[edge.target] += 1;
        }
        union_find.union(edge.source, edge.target);
    }
    let covered = degrees.iter().filter(|&&degree| degree > 0).count();
    let original_connected = graph.non_isolated_node_count();
    let share_of_connected = |count: usize| {
        if original_connected == 0 {
            1.0
        } else {
            count as f64 / original_connected as f64
        }
    };
    let edge_share = if graph.edge_count() == 0 {
        1.0
    } else {
        kept.len() as f64 / graph.edge_count() as f64
    };
    let total_weight = graph.total_weight();
    let weight_share = if total_weight == 0.0 {
        1.0
    } else {
        kept_weight / total_weight
    };
    let (components, largest_component_share) = if kept.is_empty() {
        (0, 0.0)
    } else {
        // Components among the covered nodes only: count distinct union–find
        // roots over the nodes that kept at least one edge, and take the
        // largest such root's population for the LCC share.
        let mut root_sizes = vec![0usize; node_count];
        for node in 0..node_count {
            if degrees[node] > 0 {
                root_sizes[union_find.find(node)] += 1;
            }
        }
        let mut components = 0usize;
        let mut largest = 0usize;
        for &size in &root_sizes {
            if size > 0 {
                components += 1;
                largest = largest.max(size);
            }
        }
        (components, share_of_connected(largest))
    };
    let mut degree_min = 0usize;
    let mut degree_max = 0usize;
    let mut degree_sum = 0usize;
    for &degree in &degrees {
        if degree == 0 {
            continue;
        }
        degree_min = if degree_sum == 0 {
            degree
        } else {
            degree_min.min(degree)
        };
        degree_max = degree_max.max(degree);
        degree_sum += degree;
    }
    MethodMetrics {
        edges: kept.len(),
        edge_share,
        node_coverage: share_of_connected(covered),
        weight_share,
        components,
        largest_component_share,
        degree_min,
        degree_mean: if covered == 0 {
            0.0
        } else {
            degree_sum as f64 / covered as f64
        },
        degree_max,
        noise_stability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::generators::complete_graph;
    use backboning_graph::Direction;

    fn two_triangles() -> WeightedGraph {
        // Two disjoint triangles with distinct weights.
        WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![
                ("a", "b", 9.0),
                ("b", "c", 8.0),
                ("c", "a", 7.0),
                ("x", "y", 3.0),
                ("y", "z", 2.0),
                ("z", "x", 1.0),
            ],
        )
        .unwrap()
    }

    fn quick_config(methods: Vec<Method>) -> ComparisonConfig {
        ComparisonConfig {
            methods,
            noise_resamples: 2,
            threads: 1,
            ..ComparisonConfig::default()
        }
    }

    #[test]
    fn csr_comparison_is_bit_identical_to_adjacency() {
        // The comparison engine is generic over GraphView; running it on the
        // compact CSR form must reproduce the adjacency report byte for byte
        // (same scores, same union-find connectivity, same JSON).
        let graph = two_triangles();
        let csr = backboning_graph::CsrGraph::from_graph(&graph).unwrap();
        let comparison = Comparison::new(quick_config(vec![
            Method::NaiveThreshold,
            Method::NoiseCorrected,
            Method::MaximumSpanningTree,
        ]))
        .unwrap();
        let adjacency_report = comparison.run(&graph).unwrap();
        let csr_report = comparison.run(&csr).unwrap();
        assert_eq!(adjacency_report, csr_report);
        assert_eq!(
            adjacency_report.to_json_stable(),
            csr_report.to_json_stable()
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = ComparisonConfig::default();
        assert!(Comparison::new(ComparisonConfig {
            methods: vec![],
            ..base.clone()
        })
        .is_err());
        assert!(Comparison::new(ComparisonConfig {
            methods: vec![Method::NoiseCorrected, Method::NoiseCorrected],
            ..base.clone()
        })
        .is_err());
        assert!(Comparison::new(ComparisonConfig {
            top_share: 1.5,
            ..base.clone()
        })
        .is_err());
        assert!(Comparison::new(ComparisonConfig {
            noise_level: 1.0,
            ..base.clone()
        })
        .is_err());
        assert!(Comparison::new(base).is_ok());
    }

    #[test]
    fn metrics_on_a_known_backbone() {
        let graph = two_triangles();
        // Naive top-2 keeps the two heaviest edges: a–b and b–c.
        let config = ComparisonConfig {
            top_share: 2.0 / 6.0,
            noise_resamples: 0,
            ..quick_config(vec![Method::NaiveThreshold])
        };
        let report = Comparison::new(config).unwrap().run(&graph).unwrap();
        assert_eq!(report.matched_edges, 2);
        let naive = report.method_report(Method::NaiveThreshold).unwrap();
        assert_eq!(naive.kept, vec![0, 1]);
        let metrics = naive.metrics.as_ref().unwrap();
        assert_eq!(metrics.edges, 2);
        // Covered nodes: a, b, c of 6 → coverage 0.5; one path component.
        assert!((metrics.node_coverage - 0.5).abs() < 1e-12);
        assert_eq!(metrics.components, 1);
        assert!((metrics.largest_component_share - 0.5).abs() < 1e-12);
        assert!((metrics.weight_share - 17.0 / 30.0).abs() < 1e-12);
        assert_eq!((metrics.degree_min, metrics.degree_max), (1, 2));
        assert!((metrics.degree_mean - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(metrics.noise_stability, None);
        // The Jaccard diagonal is exactly 1.
        assert_eq!(report.jaccard[0][0], Some(1.0));
    }

    #[test]
    fn disconnected_backbones_report_their_components() {
        let graph = two_triangles();
        // Keep 4 edges: the whole heavy triangle plus x–y.
        let config = ComparisonConfig {
            top_share: 4.0 / 6.0,
            noise_resamples: 0,
            ..quick_config(vec![Method::NaiveThreshold])
        };
        let report = Comparison::new(config).unwrap().run(&graph).unwrap();
        let metrics = report.methods[0].metrics.as_ref().unwrap();
        assert_eq!(metrics.components, 2);
        assert!((metrics.node_coverage - 5.0 / 6.0).abs() < 1e-12);
        assert!((metrics.largest_component_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_backbone_has_empty_metrics() {
        let graph = two_triangles();
        let config = ComparisonConfig {
            top_share: 0.0,
            noise_resamples: 2,
            ..quick_config(vec![Method::NaiveThreshold])
        };
        let report = Comparison::new(config).unwrap().run(&graph).unwrap();
        let metrics = report.methods[0].metrics.as_ref().unwrap();
        assert_eq!(metrics.edges, 0);
        assert_eq!(metrics.components, 0);
        assert_eq!(metrics.largest_component_share, 0.0);
        assert_eq!((metrics.degree_min, metrics.degree_max), (0, 0));
        // An empty set is stable under any noise: Jaccard(∅, ∅) = 1.
        assert_eq!(metrics.noise_stability, Some(1.0));
    }

    #[test]
    fn failed_methods_are_reported_not_fatal() {
        // A path graph has no doubly-stochastic scaling, so DS fails while
        // the other methods succeed.
        let graph = WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![("a", "b", 2.0), ("b", "c", 1.0)],
        )
        .unwrap();
        let config = ComparisonConfig {
            top_share: 0.5,
            noise_resamples: 1,
            ..quick_config(vec![Method::DoublyStochastic, Method::NaiveThreshold])
        };
        let report = Comparison::new(config).unwrap().run(&graph).unwrap();
        assert!(report.methods[0].metrics.is_err());
        assert!(report.methods[1].metrics.is_ok());
        assert_eq!(report.jaccard[0][1], None);
        assert_eq!(report.jaccard[1][0], None);
        assert!(report.jaccard[1][1].is_some());
        let json = report.to_json();
        assert!(json.contains("\"error\""));
        let table = report.render_table();
        assert!(table.contains("failed:"));
    }

    #[test]
    fn jaccard_matrix_is_symmetric_with_unit_diagonal() {
        let graph = complete_graph(10, 2.0).unwrap();
        let config = ComparisonConfig {
            noise_resamples: 0,
            ..quick_config(vec![
                Method::NaiveThreshold,
                Method::NoiseCorrected,
                Method::DisparityFilter,
            ])
        };
        let report = Comparison::new(config).unwrap().run(&graph).unwrap();
        for (i, row) in report.jaccard.iter().enumerate() {
            assert_eq!(row[i], Some(1.0));
            for (j, &entry) in row.iter().enumerate() {
                assert_eq!(entry, report.jaccard[j][i]);
            }
        }
    }

    #[test]
    fn noise_stability_is_deterministic_and_bounded() {
        let graph = complete_graph(12, 2.0).unwrap();
        let config = ComparisonConfig {
            noise_resamples: 4,
            ..quick_config(vec![Method::NoiseCorrected, Method::NaiveThreshold])
        };
        let first = Comparison::new(config.clone())
            .unwrap()
            .run(&graph)
            .unwrap();
        let second = Comparison::new(config).unwrap().run(&graph).unwrap();
        assert_eq!(first, second);
        for report in &first.methods {
            let stability = report.metrics.as_ref().unwrap().noise_stability.unwrap();
            assert!((0.0..=1.0).contains(&stability), "{stability}");
        }
    }

    #[test]
    fn cached_scores_reproduce_the_direct_run() {
        let graph = complete_graph(9, 2.0).unwrap();
        let config = ComparisonConfig {
            noise_resamples: 2,
            ..quick_config(vec![Method::NoiseCorrected, Method::DisparityFilter])
        };
        let comparison = Comparison::new(config).unwrap();
        let direct = comparison.run(&graph).unwrap();
        // Pre-score once, hand the shared scores in — the server's cache path.
        let mut passes = 0usize;
        let cached = comparison
            .run_with_scores(&graph, |method| {
                passes += 1;
                method.score_with_threads(&graph, 1).map(Arc::new)
            })
            .unwrap();
        assert_eq!(passes, 2);
        assert_eq!(direct, cached);
        assert_eq!(direct.to_json_stable(), cached.to_json_stable());
    }

    #[test]
    fn score_wall_time_is_reported_but_kept_out_of_the_stable_json() {
        let graph = two_triangles();
        let config = ComparisonConfig {
            noise_resamples: 0,
            ..quick_config(vec![Method::NaiveThreshold, Method::NoiseCorrected])
        };
        let report = Comparison::new(config).unwrap().run(&graph).unwrap();
        let timed = report.to_json();
        let stable = report.to_json_stable();
        assert_eq!(timed.matches("\"score_wall_ms\"").count(), 2);
        assert!(!stable.contains("score_wall_ms"));
        assert!(report.render_table().contains("score ms"));
        // The timing is a measurement, not identity: two reports differing
        // only in wall time still compare equal.
        let mut retimed = report.clone();
        retimed.methods[0].score_wall_ms = WallMillis(report.methods[0].score_wall_ms.0 + 1.0);
        assert_eq!(retimed, report);
    }

    #[test]
    fn multiplicative_resample_preserves_structure() {
        let graph = two_triangles();
        let noisy = multiplicative_resample(&graph, 0.3, 7);
        assert_eq!(noisy.node_count(), graph.node_count());
        assert_eq!(noisy.edge_count(), graph.edge_count());
        for (original, perturbed) in graph.edges().zip(noisy.edges()) {
            assert_eq!(original.source, perturbed.source);
            assert_eq!(original.target, perturbed.target);
            let factor = perturbed.weight / original.weight;
            assert!((0.7..=1.3).contains(&factor), "{factor}");
        }
        // Level 0 is the identity; the same seed reproduces the same weights.
        let identity = multiplicative_resample(&graph, 0.0, 7);
        for (original, copy) in graph.edges().zip(identity.edges()) {
            assert_eq!(original.weight, copy.weight);
        }
        let again = multiplicative_resample(&graph, 0.3, 7);
        for (first, second) in noisy.edges().zip(again.edges()) {
            assert_eq!(first.weight, second.weight);
        }
    }

    #[test]
    fn method_list_parsing() {
        assert_eq!(
            parse_method_list("nc,df,hss").unwrap(),
            DEFAULT_METHODS.to_vec()
        );
        assert_eq!(parse_method_list(" ALL ").unwrap().len(), 7);
        assert!(parse_method_list("").is_err());
        assert!(parse_method_list("nc,,df").is_err());
        assert!(parse_method_list("nc,wat").is_err());
        assert!(parse_method_list("nc,noise-corrected").is_err());
    }
}
