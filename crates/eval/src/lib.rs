//! # backboning-eval
//!
//! Evaluation harness reproducing every table and figure of *Network
//! Backboning with Noisy Data* (Coscia & Neffke, ICDE 2017) on the synthetic
//! datasets of `backboning-data`.
//!
//! | Paper artefact | Module | Reproduction binary (`backboning-bench`) |
//! |---|---|---|
//! | Figure 2 (threshold distributions) | [`experiments::fig2`] | `fig2_thresholds` |
//! | Figure 3 (toy example) | [`experiments::fig3`] | `fig3_toy` |
//! | Figure 4 (recovery under noise) | [`experiments::fig4`] | `fig4_recovery` |
//! | Figure 5 (edge weight distributions) | [`experiments::fig5`] | `fig5_weight_distributions` |
//! | Figure 6 (local weight correlation) | [`experiments::fig6`] | `fig6_local_correlation` |
//! | Table I (variance validation) | [`experiments::table1`] | `table1_validation` |
//! | Figure 7 (coverage) | [`experiments::fig7`] | `fig7_coverage` |
//! | Table II (predictive quality) | [`experiments::table2`] | `table2_quality` |
//! | Figure 8 (stability) | [`experiments::fig8`] | `fig8_stability` |
//! | Figure 9 (scalability) | [`experiments::fig9`] | `fig9_scalability` |
//! | Section VI (occupation case study) | [`experiments::case_study`] | `case_study` |
//!
//! The [`metrics`] module holds the four success criteria (recovery, coverage,
//! quality, stability) plus the variance-validation statistic, and
//! [`methods`] provides a uniform registry over the six backboning methods so
//! that every experiment sweeps the same set.
//!
//! The [`comparison`] module turns the paper's evaluation methodology into a
//! reusable engine for *user-supplied* graphs: methods are selected at
//! matched edge coverage and compared on coverage, connectivity, pairwise
//! agreement and noise stability — the `backbone compare` subcommand and the
//! server's `GET /graphs/{name}/compare` route both run through it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod experiments;
pub mod methods;
pub mod metrics;
pub mod report;

pub use comparison::{Comparison, ComparisonConfig, ComparisonReport, MethodReport};
pub use methods::Method;
pub use report::TextTable;
