//! Figure 6: local correlation of edge weights.
//!
//! For every edge the paper compares its weight to the average weight of the
//! edges incident to its endpoints and reports the log–log Pearson
//! correlation, which ranges from .42 (Flight) to .75 (Country Space) and is
//! always highly significant. This local correlation is the second reason
//! (after broad distributions) why naive thresholds discard valuable
//! information.

use backboning_data::{CountryData, CountryNetworkKind};
use backboning_graph::algorithms::degree::edge_neighbor_weight_pairs;
use backboning_stats::correlation::{correlation_p_value, log_log_pearson};

use crate::report::{fmt3, TextTable};

/// The local-correlation statistic of one network.
#[derive(Debug, Clone)]
pub struct LocalCorrelation {
    /// Which network.
    pub kind: CountryNetworkKind,
    /// Log–log Pearson correlation between edge weight and average neighbour weight.
    pub correlation: f64,
    /// Number of edges used.
    pub edges_used: usize,
    /// Two-sided p-value of the correlation.
    pub p_value: f64,
}

/// Results of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct LocalCorrelationResult {
    /// One statistic per network.
    pub correlations: Vec<LocalCorrelation>,
}

impl LocalCorrelationResult {
    /// Render the summary table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["network", "log-log correlation", "edges", "p-value"]);
        for entry in &self.correlations {
            table.add_row(vec![
                entry.kind.name().to_string(),
                fmt3(entry.correlation),
                entry.edges_used.to_string(),
                if entry.p_value < 1e-15 {
                    "< 1e-15".to_string()
                } else {
                    format!("{:.2e}", entry.p_value)
                },
            ]);
        }
        table.render()
    }
}

/// Run the Figure 6 experiment on the first year of every network.
pub fn run(data: &CountryData) -> LocalCorrelationResult {
    let mut correlations = Vec::new();
    for kind in CountryNetworkKind::all() {
        let graph = data.network(kind, 0);
        let pairs = edge_neighbor_weight_pairs(graph);
        let own: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let neighbor: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let (correlation, edges_used) =
            log_log_pearson(&own, &neighbor).expect("networks have enough positive edges");
        let p_value = correlation_p_value(correlation, edges_used).expect("enough observations");
        correlations.push(LocalCorrelation {
            kind,
            correlation,
            edges_used,
            p_value,
        });
    }
    LocalCorrelationResult { correlations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    #[test]
    fn weights_are_locally_correlated_in_every_network() {
        let data = CountryData::generate(&CountryDataConfig::small());
        let result = run(&data);
        assert_eq!(result.correlations.len(), 6);
        for entry in &result.correlations {
            assert!(
                entry.correlation > 0.1,
                "{}: local correlation {} too weak",
                entry.kind.name(),
                entry.correlation
            );
            assert!(entry.p_value < 0.01);
        }
        assert!(result.render().contains("log-log"));
    }
}
