//! Figure 2: the effect of the threshold δ on the Noise-Corrected score
//! distribution.
//!
//! The paper plots, for the Country Space and Business networks, the
//! distribution of `L̃ij − δ·sqrt(V[L̃ij])` for δ ∈ {1, 2, 3}: larger δ shifts
//! the distribution left and shrinks the acceptance region (values above
//! zero). This module reproduces the histogram and the acceptance share per δ.

use backboning::{BackboneExtractor, NoiseCorrected};
use backboning_data::{CountryData, CountryNetworkKind};
use backboning_stats::histogram::LinearHistogram;

use crate::report::{fmt3, TextTable};

/// The shifted-score distribution of one network at one δ.
#[derive(Debug, Clone)]
pub struct ThresholdDistribution {
    /// The δ value.
    pub delta: f64,
    /// Share of edges accepted (shifted score above zero).
    pub accepted_share: f64,
    /// Histogram of the shifted scores.
    pub histogram: LinearHistogram,
}

/// Results of the Figure 2 experiment for one network.
#[derive(Debug, Clone)]
pub struct ThresholdResult {
    /// The network the distributions belong to.
    pub kind: CountryNetworkKind,
    /// One distribution per δ.
    pub distributions: Vec<ThresholdDistribution>,
}

impl ThresholdResult {
    /// Render the acceptance-share table plus a coarse ASCII histogram.
    pub fn render(&self) -> String {
        let mut output = format!("Figure 2 — {} network\n", self.kind.name());
        let mut table = TextTable::new(vec!["delta", "share of edges accepted"]);
        for distribution in &self.distributions {
            table.add_row(vec![
                format!("{:.0}", distribution.delta),
                fmt3(distribution.accepted_share),
            ]);
        }
        output.push_str(&table.render());
        output.push('\n');
        for distribution in &self.distributions {
            output.push_str(&format!("delta = {:.0}\n", distribution.delta));
            let shares = distribution.histogram.shares();
            let centers = distribution.histogram.bin_centers();
            for (center, share) in centers.iter().zip(shares) {
                let bars = (share * 200.0).round() as usize;
                output.push_str(&format!("{center:>8.2} | {}\n", "#".repeat(bars.min(80))));
            }
        }
        output
    }
}

/// Run the Figure 2 experiment on one network of the dataset.
pub fn run(
    data: &CountryData,
    kind: CountryNetworkKind,
    deltas: &[f64],
    bins: usize,
) -> ThresholdResult {
    let graph = data.network(kind, 0);
    let scored = NoiseCorrected::default()
        .score(graph)
        .expect("NC scores any weighted graph");
    let mut distributions = Vec::with_capacity(deltas.len());
    for &delta in deltas {
        let shifted: Vec<f64> = scored
            .iter()
            .map(|edge| edge.raw_score.unwrap_or(0.0) - delta * edge.std_dev.unwrap_or(0.0))
            .collect();
        let accepted = shifted.iter().filter(|&&s| s > 0.0).count();
        let accepted_share = accepted as f64 / shifted.len().max(1) as f64;
        let histogram =
            LinearHistogram::new(&shifted, bins).expect("scores are non-empty and finite");
        distributions.push(ThresholdDistribution {
            delta,
            accepted_share,
            histogram,
        });
    }
    ThresholdResult {
        kind,
        distributions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    #[test]
    fn higher_delta_accepts_fewer_edges() {
        let data = CountryData::generate(&CountryDataConfig::small());
        let result = run(&data, CountryNetworkKind::Business, &[1.0, 2.0, 3.0], 20);
        assert_eq!(result.distributions.len(), 3);
        let shares: Vec<f64> = result
            .distributions
            .iter()
            .map(|d| d.accepted_share)
            .collect();
        assert!(shares[0] >= shares[1]);
        assert!(shares[1] >= shares[2]);
        assert!(shares[2] > 0.0, "even delta = 3 keeps some edges");
        let rendered = result.render();
        assert!(rendered.contains("Business"));
        assert!(rendered.contains("delta"));
    }
}
