//! Figure 4: recovery of the true backbone of synthetic Barabási–Albert
//! networks under increasing noise.
//!
//! The paper generates BA networks with 200 nodes and average degree 3, gives
//! every true edge weight `(k_i + k_j)·U(η, 1)` and every noise edge weight
//! `(k_i + k_j)·U(0, η)`, and measures — for every method, constrained to
//! return exactly as many edges as the true network has — the Jaccard
//! similarity between the recovered and the true edge set, for
//! `η ∈ [0, 0.3]`. The headline result: NC is the most noise-resilient method
//! overall, while NT and DF degrade together as noise grows.

use backboning_data::noisy_barabasi_albert;
use backboning_parallel::{par_map, resolve_threads};

use crate::methods::Method;
use crate::metrics::recovery::jaccard_index;
use crate::report::{fmt_opt, TextTable};

/// Configuration of the recovery experiment.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Number of nodes of the Barabási–Albert networks (paper: 200).
    pub nodes: usize,
    /// Attachment parameter of the BA model (paper: average degree 3).
    pub edges_per_node: usize,
    /// Noise levels to sweep (paper: 0 to 0.3).
    pub noise_levels: Vec<f64>,
    /// Number of independent repetitions averaged per noise level.
    pub repetitions: usize,
    /// Base random seed.
    pub seed: u64,
    /// Methods to compare.
    pub methods: Vec<Method>,
    /// Worker threads for the Monte Carlo trials (`0` = automatic, honoring
    /// `BACKBONING_THREADS`). Every trial derives its seed from its own
    /// (noise level, repetition) coordinates and results are aggregated in
    /// trial order, so the recovery rows are bit-identical at any setting.
    pub threads: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            nodes: 200,
            edges_per_node: 3,
            noise_levels: vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30],
            repetitions: 5,
            seed: 4242,
            methods: Method::all().to_vec(),
            threads: 0,
        }
    }
}

impl RecoveryConfig {
    /// A small configuration for tests.
    pub fn small() -> Self {
        RecoveryConfig {
            nodes: 60,
            edges_per_node: 3,
            noise_levels: vec![0.05, 0.2],
            repetitions: 1,
            seed: 7,
            methods: vec![
                Method::NaiveThreshold,
                Method::DisparityFilter,
                Method::NoiseCorrected,
            ],
            threads: 0,
        }
    }
}

/// One row of the recovery results: a noise level and the average Jaccard
/// recovery per method (`None` when a method failed, e.g. Doubly Stochastic
/// without a feasible scaling).
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// The noise level η.
    pub noise: f64,
    /// Average recovery per method, aligned with the config's method list.
    pub recovery: Vec<Option<f64>>,
}

/// Full results of the recovery experiment.
#[derive(Debug, Clone)]
pub struct RecoveryResult {
    /// The methods compared, in column order.
    pub methods: Vec<Method>,
    /// One point per noise level.
    pub points: Vec<RecoveryPoint>,
}

impl RecoveryResult {
    /// Average recovery of one method over all noise levels (ignoring failures).
    pub fn average_recovery(&self, method: Method) -> Option<f64> {
        let column = self.methods.iter().position(|&m| m == method)?;
        let values: Vec<f64> = self
            .points
            .iter()
            .filter_map(|p| p.recovery[column])
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Render the Figure 4 table.
    pub fn render(&self) -> String {
        let mut header = vec!["noise".to_string()];
        header.extend(self.methods.iter().map(|m| m.short_name().to_string()));
        let mut table = TextTable::new(header);
        for point in &self.points {
            let mut row = vec![format!("{:.2}", point.noise)];
            row.extend(point.recovery.iter().map(|&r| fmt_opt(r)));
            table.add_row(row);
        }
        table.render()
    }
}

/// Run the Figure 4 recovery experiment.
///
/// The Monte Carlo trials — one noisy network generation plus one backbone
/// extraction per method — fan out across `config.threads` workers. Each
/// trial's seed is a pure function of its (noise level, repetition)
/// coordinates, and the per-trial recoveries are summed sequentially in the
/// same nested order as the sequential loop, so the resulting rows are
/// bit-identical for every thread count.
pub fn run(config: &RecoveryConfig) -> RecoveryResult {
    // One entry per (noise level, repetition) pair, in row-major order.
    let trials: Vec<(usize, f64, usize)> = config
        .noise_levels
        .iter()
        .enumerate()
        .flat_map(|(noise_index, &noise)| {
            (0..config.repetitions).map(move |repetition| (noise_index, noise, repetition))
        })
        .collect();

    let per_trial: Vec<Vec<Option<f64>>> = par_map(
        &trials,
        resolve_threads(config.threads),
        |_, &(noise_index, noise, repetition)| {
            let seed = config
                .seed
                .wrapping_add(noise_index as u64 * 1000)
                .wrapping_add(repetition as u64);
            let network = noisy_barabasi_albert(config.nodes, config.edges_per_node, noise, seed)
                .expect("valid synthetic network parameters");
            let true_edges = network.true_edge_indices();
            config
                .methods
                .iter()
                .map(|method| {
                    // A method may be inapplicable on an instance (e.g. DS
                    // without a doubly-stochastic scaling): report `None`,
                    // mirroring "n/a". Inner scoring is pinned to one thread —
                    // the trial loop is the parallel axis.
                    method
                        .edge_set_with_threads(&network.graph, network.true_edge_count, 1)
                        .ok()
                        .map(|recovered| jaccard_index(&recovered, &true_edges))
                })
                .collect()
        },
    );

    let mut points = Vec::with_capacity(config.noise_levels.len());
    for (noise_index, &noise) in config.noise_levels.iter().enumerate() {
        let mut sums = vec![0.0; config.methods.len()];
        let mut counts = vec![0usize; config.methods.len()];
        for repetition in 0..config.repetitions {
            let row = &per_trial[noise_index * config.repetitions + repetition];
            for (column, recovery) in row.iter().enumerate() {
                if let Some(value) = recovery {
                    sums[column] += value;
                    counts[column] += 1;
                }
            }
        }
        let recovery = sums
            .iter()
            .zip(&counts)
            .map(|(&sum, &count)| {
                if count > 0 {
                    Some(sum / count as f64)
                } else {
                    None
                }
            })
            .collect();
        points.push(RecoveryPoint { noise, recovery });
    }
    RecoveryResult {
        methods: config.methods.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_full_grid() {
        let config = RecoveryConfig::small();
        let result = run(&config);
        assert_eq!(result.points.len(), 2);
        for point in &result.points {
            assert_eq!(point.recovery.len(), 3);
        }
        let rendered = result.render();
        assert!(rendered.contains("NC"));
        assert!(rendered.contains("0.05"));
    }

    #[test]
    fn recovery_degrades_with_noise_for_naive_threshold() {
        let config = RecoveryConfig {
            noise_levels: vec![0.02, 0.3],
            ..RecoveryConfig::small()
        };
        let result = run(&config);
        let nt_column = 0;
        let low_noise = result.points[0].recovery[nt_column].unwrap();
        let high_noise = result.points[1].recovery[nt_column].unwrap();
        assert!(low_noise >= high_noise);
    }

    #[test]
    fn recovery_rows_are_identical_at_any_thread_count() {
        let reference = run(&RecoveryConfig {
            threads: 1,
            repetitions: 2,
            ..RecoveryConfig::small()
        });
        for threads in [2usize, 4] {
            let parallel = run(&RecoveryConfig {
                threads,
                repetitions: 2,
                ..RecoveryConfig::small()
            });
            assert_eq!(parallel.points.len(), reference.points.len());
            for (a, b) in parallel.points.iter().zip(&reference.points) {
                assert_eq!(a.noise, b.noise);
                // Bit-identical, not approximately equal: the parallel path
                // must aggregate in the exact sequential order.
                assert_eq!(a.recovery, b.recovery, "threads = {threads}");
            }
        }
    }

    #[test]
    fn noise_corrected_recovers_most_of_the_true_network() {
        let config = RecoveryConfig::small();
        let result = run(&config);
        let nc = result.average_recovery(Method::NoiseCorrected).unwrap();
        assert!(nc > 0.5, "NC recovery {nc} too low");
    }
}
