//! Figure 9: running-time scalability.
//!
//! The paper measures the running time of every method on Erdős–Rényi graphs
//! with average degree 3 and uniform random weights, from tens of thousands to
//! millions of edges, and reports (i) nearly linear scaling for the
//! Noise-Corrected backbone (`~O(|E|^1.14)` empirically), (ii) NC, NT and DF
//! within a constant factor of each other, and (iii) HSS and DS orders of
//! magnitude slower, unusable beyond a few thousand edges. The same workload
//! and measurements are reproduced here; absolute seconds depend on the
//! machine, the scaling exponent and method ordering do not.

use std::time::Instant;

use backboning_data::scalability_workload;

use crate::methods::Method;
use crate::report::TextTable;

/// Timing of every method at one network size.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Number of edges of the workload.
    pub edges: usize,
    /// Seconds per method (aligned with the result's method list; `None` when
    /// the method was skipped at this size).
    pub seconds: Vec<Option<f64>>,
}

/// Results of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct ScalabilityResult {
    /// Methods compared, in column order.
    pub methods: Vec<Method>,
    /// One point per network size.
    pub points: Vec<ScalabilityPoint>,
}

impl ScalabilityResult {
    /// Empirical scaling exponent of one method: the slope of a log–log least
    /// squares fit of seconds against edge count. Requires at least two sizes.
    pub fn scaling_exponent(&self, method: Method) -> Option<f64> {
        let column = self.methods.iter().position(|&m| m == method)?;
        let samples: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter_map(|p| p.seconds[column].map(|s| ((p.edges as f64).ln(), s.max(1e-9).ln())))
            .collect();
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let mean_x = samples.iter().map(|s| s.0).sum::<f64>() / n;
        let mean_y = samples.iter().map(|s| s.1).sum::<f64>() / n;
        let numerator: f64 = samples
            .iter()
            .map(|s| (s.0 - mean_x) * (s.1 - mean_y))
            .sum();
        let denominator: f64 = samples
            .iter()
            .map(|s| (s.0 - mean_x) * (s.0 - mean_x))
            .sum();
        if denominator > 0.0 {
            Some(numerator / denominator)
        } else {
            None
        }
    }

    /// Render the timing table and the fitted exponents.
    pub fn render(&self) -> String {
        let mut header = vec!["edges".to_string()];
        header.extend(self.methods.iter().map(|m| m.short_name().to_string()));
        let mut table = TextTable::new(header);
        for point in &self.points {
            let mut row = vec![point.edges.to_string()];
            row.extend(point.seconds.iter().map(|&s| match s {
                Some(seconds) => format!("{seconds:.3}s"),
                None => "skipped".to_string(),
            }));
            table.add_row(row);
        }
        let mut output = table.render();
        output.push('\n');
        for method in &self.methods {
            if let Some(exponent) = self.scaling_exponent(*method) {
                output.push_str(&format!(
                    "{}: empirical time complexity ~ O(|E|^{exponent:.2})\n",
                    method.short_name()
                ));
            }
        }
        output
    }
}

/// Run the Figure 9 experiment.
///
/// * `sizes` — edge counts of the Erdős–Rényi workloads;
/// * `slow_method_limit` — HSS and DS are only run on workloads with at most
///   this many edges (the paper could not run them beyond a few thousand
///   edges either).
pub fn run(
    methods: &[Method],
    sizes: &[usize],
    slow_method_limit: usize,
    seed: u64,
) -> ScalabilityResult {
    let mut points = Vec::with_capacity(sizes.len());
    for (index, &edges) in sizes.iter().enumerate() {
        let graph = scalability_workload(edges, seed.wrapping_add(index as u64))
            .expect("valid scalability workload");
        let mut seconds = Vec::with_capacity(methods.len());
        for method in methods {
            let is_slow = matches!(
                method,
                Method::HighSalienceSkeleton | Method::DoublyStochastic
            );
            if is_slow && edges > slow_method_limit {
                seconds.push(None);
                continue;
            }
            let start = Instant::now();
            let outcome = method.score(&graph);
            let elapsed = start.elapsed().as_secs_f64();
            seconds.push(outcome.ok().map(|_| elapsed));
        }
        points.push(ScalabilityPoint { edges, seconds });
    }
    ScalabilityResult {
        methods: methods.to_vec(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nc_runs_fast_and_scales_near_linearly() {
        let methods = vec![Method::NaiveThreshold, Method::NoiseCorrected];
        let result = run(&methods, &[2_000, 8_000], usize::MAX, 3);
        assert_eq!(result.points.len(), 2);
        for point in &result.points {
            for value in &point.seconds {
                assert!(value.is_some());
            }
        }
        // Even in debug builds 8k edges must take well under a second per method.
        assert!(result.points[1].seconds[1].unwrap() < 5.0);
        let rendered = result.render();
        assert!(rendered.contains("edges"));
    }

    #[test]
    fn slow_methods_are_skipped_above_the_limit() {
        let methods = vec![Method::NoiseCorrected, Method::HighSalienceSkeleton];
        let result = run(&methods, &[500, 4_000], 1_000, 5);
        assert!(result.points[0].seconds[1].is_some());
        assert!(result.points[1].seconds[1].is_none());
    }
}
