//! Figure 3: the toy example contrasting the Noise-Corrected backbone and the
//! Disparity Filter.
//!
//! A hub (node 1 of the paper's figure) is connected to five nodes; two of the
//! peripheral nodes are also connected to each other by a weaker edge. The
//! Disparity Filter keeps the hub's edges towards that pair (from the pair's
//! perspective they carry most of the strength), while the Noise-Corrected
//! backbone considers the peripheral–peripheral edge the real surprise.

use backboning::{BackboneExtractor, DisparityFilter, NoiseCorrected};
use backboning_graph::{GraphBuilder, WeightedGraph};

use crate::report::{fmt3, TextTable};

/// The scores of every toy-example edge under both methods.
#[derive(Debug, Clone)]
pub struct ToyExampleResult {
    /// Edge endpoints (hub = node 0, connected peripheral pair = nodes 1 and 2).
    pub edges: Vec<(usize, usize, f64)>,
    /// NC score (standard deviations above the null) per edge.
    pub nc_scores: Vec<f64>,
    /// Disparity Filter score (1 − α) per edge.
    pub df_scores: Vec<f64>,
}

impl ToyExampleResult {
    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["edge", "weight", "NC score", "DF score"]);
        for (index, &(source, target, weight)) in self.edges.iter().enumerate() {
            table.add_row(vec![
                format!("{source}-{target}"),
                format!("{weight}"),
                fmt3(self.nc_scores[index]),
                fmt3(self.df_scores[index]),
            ]);
        }
        table.render()
    }
}

/// The toy graph of Figure 3: hub 0 with five spokes of weight 20 and a
/// peripheral edge 1–2 of weight 10.
pub fn toy_graph() -> WeightedGraph {
    GraphBuilder::undirected()
        .indexed_edge(0, 1, 20.0)
        .indexed_edge(0, 2, 20.0)
        .indexed_edge(0, 3, 20.0)
        .indexed_edge(0, 4, 20.0)
        .indexed_edge(0, 5, 20.0)
        .indexed_edge(1, 2, 10.0)
        .build()
        .expect("valid toy graph")
}

/// Run the Figure 3 comparison.
pub fn run() -> ToyExampleResult {
    let graph = toy_graph();
    let nc = NoiseCorrected::default()
        .score(&graph)
        .expect("NC scores the toy graph");
    let df = DisparityFilter::new()
        .score(&graph)
        .expect("DF scores the toy graph");
    let mut edges = Vec::new();
    let mut nc_scores = Vec::new();
    let mut df_scores = Vec::new();
    for edge in graph.edges() {
        edges.push((edge.source, edge.target, edge.weight));
        nc_scores.push(nc.get(edge.index).expect("scored").score);
        df_scores.push(df.get(edge.index).expect("scored").score);
    }
    ToyExampleResult {
        edges,
        nc_scores,
        df_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nc_and_df_disagree_on_the_hub_edges_to_the_pair() {
        let result = run();
        let index_of = |a: usize, b: usize| {
            result
                .edges
                .iter()
                .position(|&(s, t, _)| (s, t) == (a, b) || (s, t) == (b, a))
                .unwrap()
        };
        let peripheral = index_of(1, 2);
        let hub_to_pair = index_of(0, 1);
        // NC: peripheral edge more salient than the hub edge to the same node.
        assert!(result.nc_scores[peripheral] > result.nc_scores[hub_to_pair]);
        // DF: the hub edge is at least as salient as the peripheral edge.
        assert!(result.df_scores[hub_to_pair] >= result.df_scores[peripheral]);
        let rendered = result.render();
        assert!(rendered.contains("1-2"));
    }
}
