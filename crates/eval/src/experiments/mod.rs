//! One module per table / figure of the paper's evaluation.
//!
//! Every experiment exposes a configuration struct, a `run` function returning
//! structured results, and a `render` helper producing the plain-text report
//! printed by the corresponding `backboning-bench` binary. `EXPERIMENTS.md` at
//! the repository root records the paper's numbers next to the reproduced ones.

pub mod case_study;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
