//! Figure 5: cumulative edge-weight distributions of the six country networks.
//!
//! The paper shows that every network has a broad weight distribution (several
//! orders of magnitude between the median and the heaviest edges), which is
//! the reason naive thresholding cannot work. This module reproduces the
//! complementary cumulative distribution and a set of summary quantiles.

use backboning_data::{CountryData, CountryNetworkKind};
use backboning_graph::algorithms::degree::edge_weights;
use backboning_stats::descriptive::quantile;
use backboning_stats::histogram::{ccdf, DistributionPoint};

use crate::report::TextTable;

/// The weight distribution of one network.
#[derive(Debug, Clone)]
pub struct WeightDistribution {
    /// Which network.
    pub kind: CountryNetworkKind,
    /// Number of edges.
    pub edge_count: usize,
    /// Median edge weight.
    pub median: f64,
    /// 99th percentile edge weight.
    pub p99: f64,
    /// Maximum edge weight.
    pub max: f64,
    /// Orders of magnitude spanned by the weights (log10 max / min).
    pub orders_of_magnitude: f64,
    /// The full complementary CDF.
    pub ccdf: Vec<DistributionPoint>,
}

/// Results of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct WeightDistributionResult {
    /// One distribution per network.
    pub distributions: Vec<WeightDistribution>,
}

impl WeightDistributionResult {
    /// Render the summary table (the CCDF curves themselves are available in
    /// the structured result).
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "network",
            "edges",
            "median weight",
            "p99 weight",
            "max weight",
            "orders of magnitude",
        ]);
        for distribution in &self.distributions {
            table.add_row(vec![
                distribution.kind.name().to_string(),
                distribution.edge_count.to_string(),
                format!("{:.1}", distribution.median),
                format!("{:.1}", distribution.p99),
                format!("{:.1}", distribution.max),
                format!("{:.1}", distribution.orders_of_magnitude),
            ]);
        }
        table.render()
    }
}

/// Run the Figure 5 experiment on the first year of every network.
pub fn run(data: &CountryData) -> WeightDistributionResult {
    let mut distributions = Vec::new();
    for kind in CountryNetworkKind::all() {
        let weights = edge_weights(data.network(kind, 0));
        let median = quantile(&weights, 0.5).expect("networks are non-empty");
        let p99 = quantile(&weights, 0.99).expect("networks are non-empty");
        let max = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = weights
            .iter()
            .cloned()
            .filter(|&w| w > 0.0)
            .fold(f64::INFINITY, f64::min);
        distributions.push(WeightDistribution {
            kind,
            edge_count: weights.len(),
            median,
            p99,
            max,
            orders_of_magnitude: (max / min).log10(),
            ccdf: ccdf(&weights).expect("networks are non-empty"),
        });
    }
    WeightDistributionResult { distributions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    #[test]
    fn distributions_are_broad_for_all_networks() {
        let data = CountryData::generate(&CountryDataConfig::small());
        let result = run(&data);
        assert_eq!(result.distributions.len(), 6);
        for distribution in &result.distributions {
            assert!(distribution.edge_count > 0);
            assert!(distribution.max >= distribution.p99);
            assert!(distribution.p99 >= distribution.median);
            // CCDF starts at share 1 and is non-increasing.
            assert!((distribution.ccdf[0].share - 1.0).abs() < 1e-12);
        }
        // The flow/stock networks span at least ~3 orders of magnitude.
        let trade = result
            .distributions
            .iter()
            .find(|d| d.kind == CountryNetworkKind::Trade)
            .unwrap();
        assert!(trade.orders_of_magnitude > 3.0);
        assert!(result.render().contains("Trade"));
    }
}
