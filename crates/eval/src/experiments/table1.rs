//! Table I: validation of the Noise-Corrected variance estimates.
//!
//! The paper correlates, for every country network, the NC-predicted variance
//! of the transformed edge weights with the variance actually observed across
//! the yearly snapshots (reported correlations range from .064 for Migration
//! to .872 for Ownership, all significant at p < 10⁻⁹).

use backboning_data::{CountryData, CountryNetworkKind};

use crate::metrics::validation::variance_validation_correlation;
use crate::report::{fmt_opt, TextTable};

/// The validation statistic of one network.
#[derive(Debug, Clone)]
pub struct ValidationEntry {
    /// Which network.
    pub kind: CountryNetworkKind,
    /// Correlation between predicted and observed variance (`None` when the
    /// statistic could not be computed).
    pub correlation: Option<f64>,
}

/// Results of the Table I experiment.
#[derive(Debug, Clone)]
pub struct ValidationResult {
    /// One entry per network.
    pub entries: Vec<ValidationEntry>,
}

impl ValidationResult {
    /// Render the Table I reproduction.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Network", "NC Corr"]);
        for entry in &self.entries {
            table.add_row(vec![
                entry.kind.name().to_string(),
                fmt_opt(entry.correlation),
            ]);
        }
        table.render()
    }
}

/// Run the Table I experiment on every network of the dataset.
pub fn run(data: &CountryData) -> ValidationResult {
    let entries = CountryNetworkKind::all()
        .into_iter()
        .map(|kind| ValidationEntry {
            kind,
            correlation: variance_validation_correlation(data.yearly_networks(kind)).ok(),
        })
        .collect();
    ValidationResult { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    #[test]
    fn every_network_validates_positively() {
        let data = CountryData::generate(&CountryDataConfig::small());
        let result = run(&data);
        assert_eq!(result.entries.len(), 6);
        for entry in &result.entries {
            let correlation = entry
                .correlation
                .unwrap_or_else(|| panic!("{} should produce a correlation", entry.kind.name()));
            assert!(
                correlation > 0.0,
                "{}: correlation {correlation} should be positive",
                entry.kind.name()
            );
        }
        assert!(result.render().contains("NC Corr"));
    }
}
