//! Figure 8: stability (year-on-year robustness of the backbone).
//!
//! The paper computes, for every method and backbone size, the Spearman
//! correlation between the year-`t` and year-`t+1` weights of the backbone's
//! edges. All methods are very stable on the country networks (correlations
//! above .84); the experiment checks that pruning noisy edges does not *hurt*
//! stability.

use backboning::{Pipeline, ThresholdPolicy};
use backboning_data::{CountryData, CountryNetworkKind};

use crate::methods::Method;
use crate::metrics::stability::stability;
use crate::report::{fmt_opt, TextTable};

/// Stability of every method at one edge share on one network.
#[derive(Debug, Clone)]
pub struct StabilityPoint {
    /// Share of edges kept in the backbone.
    pub edge_share: f64,
    /// Stability per method (aligned with the result's method list).
    pub stability: Vec<Option<f64>>,
}

/// Stability sweep of one network.
#[derive(Debug, Clone)]
pub struct StabilitySweep {
    /// Which network.
    pub kind: CountryNetworkKind,
    /// One point per edge share.
    pub points: Vec<StabilityPoint>,
}

/// Results of the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct StabilityResult {
    /// Methods compared, in column order.
    pub methods: Vec<Method>,
    /// One sweep per network.
    pub sweeps: Vec<StabilitySweep>,
}

impl StabilityResult {
    /// Render the Figure 8 tables (one block per network).
    pub fn render(&self) -> String {
        let mut output = String::new();
        for sweep in &self.sweeps {
            output.push_str(&format!("Stability — {} network\n", sweep.kind.name()));
            let mut header = vec!["edge share".to_string()];
            header.extend(self.methods.iter().map(|m| m.short_name().to_string()));
            let mut table = TextTable::new(header);
            for point in &sweep.points {
                let mut row = vec![format!("{:.3}", point.edge_share)];
                row.extend(point.stability.iter().map(|&s| fmt_opt(s)));
                table.add_row(row);
            }
            output.push_str(&table.render());
            output.push('\n');
        }
        output
    }
}

/// Run the Figure 8 experiment between the first two yearly observations.
pub fn run(data: &CountryData, methods: &[Method], edge_shares: &[f64]) -> StabilityResult {
    assert!(
        data.years() >= 2,
        "stability needs at least two yearly observations"
    );
    let mut sweeps = Vec::new();
    for kind in CountryNetworkKind::all() {
        let year_t = data.network(kind, 0);
        let year_t1 = data.network(kind, 1);
        let scored: Vec<Option<backboning::ScoredEdges>> = methods
            .iter()
            .map(|method| {
                if method.is_parameter_free() {
                    None
                } else {
                    method.score(year_t).ok()
                }
            })
            .collect();
        let fixed: Vec<Option<Vec<usize>>> = methods
            .iter()
            .map(|method| {
                if method.is_parameter_free() {
                    method.edge_set(year_t, 0).ok()
                } else {
                    None
                }
            })
            .collect();

        let mut points = Vec::new();
        for &share in edge_shares {
            let target = ((share * year_t.edge_count() as f64).round() as usize).max(2);
            let mut row = Vec::with_capacity(methods.len());
            for (column, method) in methods.iter().enumerate() {
                // The per-share cut goes through the shared Pipeline, the
                // same selection code the `backbone` CLI runs.
                let edge_set = if method.is_parameter_free() {
                    fixed[column].clone()
                } else {
                    scored[column].as_ref().and_then(|s| {
                        Pipeline::new(*method, ThresholdPolicy::TopK(target))
                            .select(year_t, s)
                            .ok()
                    })
                };
                let value = edge_set.and_then(|edges| stability(&edges, year_t, year_t1).ok());
                row.push(value);
            }
            points.push(StabilityPoint {
                edge_share: share,
                stability: row,
            });
        }
        sweeps.push(StabilitySweep { kind, points });
    }
    StabilityResult {
        methods: methods.to_vec(),
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    #[test]
    fn backbones_are_stable_across_years() {
        let data = CountryData::generate(&CountryDataConfig::small());
        let methods = vec![Method::NaiveThreshold, Method::NoiseCorrected];
        let result = run(&data, &methods, &[0.2]);
        assert_eq!(result.sweeps.len(), 6);
        for sweep in &result.sweeps {
            for point in &sweep.points {
                for (column, value) in point.stability.iter().enumerate() {
                    let value = value.unwrap_or_else(|| {
                        panic!("{}: missing stability", result.methods[column].short_name())
                    });
                    assert!(
                        value > 0.5,
                        "{} / {}: stability {value} too low",
                        sweep.kind.name(),
                        result.methods[column].short_name()
                    );
                }
            }
        }
        assert!(result.render().contains("Stability"));
    }
}
