//! Section VI: the occupation skill-relatedness case study.
//!
//! The paper extracts NC and DF backbones (of comparable size) from an
//! occupation skill co-occurrence network and evaluates them on four
//! statistics:
//!
//! 1. the relative Infomap codelength gain from partitioning the backbone
//!    (paper: 15.0% for NC vs 9.3% for DF);
//! 2. the modularity of the expert occupation classification on the backbone
//!    (paper: 0.192 vs 0.115);
//! 3. the normalized mutual information between the detected communities and
//!    the classification (paper: 0.423 vs 0.401);
//! 4. the correlation between skill overlap and occupation-switching flows,
//!    restricted to the backbone's pairs (paper: 0.454 for NC vs 0.431 for DF
//!    vs 0.390 on all pairs).

use backboning::{BackboneExtractor, DisparityFilter, NoiseCorrected};
use backboning_data::OccupationData;
use backboning_graph::WeightedGraph;
use backboning_netsci::community::infomap;
use backboning_netsci::{modularity, normalized_mutual_information, Partition};
use backboning_stats::OlsModel;

use crate::report::{fmt3, TextTable};

/// Case-study statistics of one backbone (or of the full network).
#[derive(Debug, Clone)]
pub struct CaseStudyEntry {
    /// Label ("full network", "Noise-Corrected", "Disparity Filter").
    pub label: String,
    /// Number of edges of the (backbone) network.
    pub edges: usize,
    /// Number of non-isolated nodes.
    pub covered_nodes: usize,
    /// Infomap codelength without communities (bits).
    pub baseline_codelength: f64,
    /// Infomap codelength with the detected communities (bits).
    pub partitioned_codelength: f64,
    /// Relative codelength gain.
    pub codelength_gain: f64,
    /// Modularity of the expert (major-group) classification on this network.
    pub classification_modularity: f64,
    /// NMI between detected communities and the classification.
    pub nmi_with_classification: f64,
    /// Correlation between predicted and observed flows on this network's pairs.
    pub flow_correlation: f64,
}

/// Results of the case study.
#[derive(Debug, Clone)]
pub struct CaseStudyResult {
    /// Statistics for the full network, the NC backbone and the DF backbone.
    pub entries: Vec<CaseStudyEntry>,
}

impl CaseStudyResult {
    /// The entry with the given label.
    pub fn entry(&self, label: &str) -> Option<&CaseStudyEntry> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// Render the case-study comparison table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "network",
            "edges",
            "covered nodes",
            "codelength gain",
            "classification modularity",
            "NMI vs classification",
            "flow correlation",
        ]);
        for entry in &self.entries {
            table.add_row(vec![
                entry.label.clone(),
                entry.edges.to_string(),
                entry.covered_nodes.to_string(),
                format!("{:.1}%", entry.codelength_gain * 100.0),
                fmt3(entry.classification_modularity),
                fmt3(entry.nmi_with_classification),
                fmt3(entry.flow_correlation),
            ]);
        }
        table.render()
    }
}

/// Correlation between observed flows and the flows predicted by the
/// case-study regression `F_ij = β1 C_ij + β2 S_i. + β3 S_.j`, restricted to
/// the ordered occupation pairs connected in `pair_source`.
fn flow_prediction_correlation(data: &OccupationData, pair_source: &WeightedGraph) -> f64 {
    let outgoing = data.outgoing_switches();
    let incoming = data.incoming_switches();
    let mut flows = Vec::new();
    let mut common_skills = Vec::new();
    let mut origin_size = Vec::new();
    let mut destination_size = Vec::new();
    // Ordered pairs: each undirected co-occurrence edge contributes both directions.
    for edge in pair_source.edges() {
        for (origin, destination) in [(edge.source, edge.target), (edge.target, edge.source)] {
            let flow = data.flows.edge_weight(origin, destination).unwrap_or(0.0);
            let skills = data
                .co_occurrence
                .edge_weight(origin, destination)
                .unwrap_or(0.0);
            flows.push(flow);
            common_skills.push(skills);
            origin_size.push(outgoing[origin]);
            destination_size.push(incoming[destination]);
        }
    }
    let fit = OlsModel::new()
        .predictor("common_skills", common_skills)
        .predictor("origin_size", origin_size)
        .predictor("destination_size", destination_size)
        .fit(&flows)
        .expect("enough observations for the case-study regression");
    fit.fit_correlation()
}

/// Compute the full set of case-study statistics for one network.
fn evaluate(label: &str, data: &OccupationData, network: &WeightedGraph) -> CaseStudyEntry {
    let classification = Partition::from_labels(data.major_group.clone());
    let infomap_result = infomap(network, 30);
    let entry_modularity = modularity(network, &classification);
    let nmi = normalized_mutual_information(&infomap_result.partition, &classification);
    CaseStudyEntry {
        label: label.to_string(),
        edges: network.edge_count(),
        covered_nodes: network.non_isolated_node_count(),
        baseline_codelength: infomap_result.baseline_codelength,
        partitioned_codelength: infomap_result.codelength,
        codelength_gain: infomap_result.compression_gain(),
        classification_modularity: entry_modularity,
        nmi_with_classification: nmi,
        flow_correlation: flow_prediction_correlation(data, network),
    }
}

/// Run the case study.
///
/// `edge_share` controls the size of the two backbones (both methods keep the
/// same number of edges, as in the paper's figures).
pub fn run(data: &OccupationData, edge_share: f64) -> CaseStudyResult {
    let full = &data.co_occurrence;
    let target_edges = ((edge_share * full.edge_count() as f64).round() as usize).max(10);

    let nc_scored = NoiseCorrected::default()
        .score(full)
        .expect("NC scores the co-occurrence network");
    let nc_backbone = nc_scored
        .backbone_top_k(full, target_edges)
        .expect("NC backbone extraction");

    let df_scored = DisparityFilter::new()
        .score(full)
        .expect("DF scores the co-occurrence network");
    let df_backbone = df_scored
        .backbone_top_k(full, target_edges)
        .expect("DF backbone extraction");

    let entries = vec![
        evaluate("full network", data, full),
        evaluate("Noise-Corrected", data, &nc_backbone),
        evaluate("Disparity Filter", data, &df_backbone),
    ];
    CaseStudyResult { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::OccupationDataConfig;

    #[test]
    fn backbones_improve_over_the_full_hairball() {
        let data = OccupationData::generate(&OccupationDataConfig::small());
        let result = run(&data, 0.15);
        assert_eq!(result.entries.len(), 3);

        let full = result.entry("full network").unwrap();
        let nc = result.entry("Noise-Corrected").unwrap();
        let df = result.entry("Disparity Filter").unwrap();

        // Equal backbone sizes.
        assert_eq!(nc.edges, df.edges);
        assert!(nc.edges < full.edges);

        // Pruning the hairball must reveal structure: the NC backbone's
        // codelength gain and classification modularity beat the full network's.
        assert!(nc.codelength_gain >= full.codelength_gain);
        assert!(nc.classification_modularity > full.classification_modularity);

        // The paper's headline comparison: NC beats DF on the classification
        // modularity of the backbone and matches-or-beats it on flow prediction.
        assert!(
            nc.classification_modularity >= df.classification_modularity,
            "NC modularity {} < DF modularity {}",
            nc.classification_modularity,
            df.classification_modularity
        );
        assert!(nc.flow_correlation > 0.0);
        assert!(result.render().contains("Noise-Corrected"));
    }
}
