//! Figure 7: coverage (the Topology criterion).
//!
//! For every network and every method the paper plots the share of originally
//! non-isolated nodes preserved by the backbone as a function of the share of
//! edges kept. MST, DS and HSS achieve (near-)perfect coverage by
//! construction; the interesting comparison is NC vs DF vs the naive
//! threshold, where the naive threshold is the first to isolate weak nodes.

use backboning::{Pipeline, ThresholdPolicy};
use backboning_data::{CountryData, CountryNetworkKind};
use backboning_parallel::{par_map, resolve_threads};

use crate::methods::Method;
use crate::metrics::coverage::coverage;
use crate::report::{fmt_opt, TextTable};

/// Coverage of every method at one edge share on one network.
#[derive(Debug, Clone)]
pub struct CoveragePoint {
    /// Share of edges kept in the backbone.
    pub edge_share: f64,
    /// Coverage per method (aligned with the result's method list, `None` when
    /// the method is not applicable).
    pub coverage: Vec<Option<f64>>,
}

/// Coverage sweep of one network.
#[derive(Debug, Clone)]
pub struct CoverageSweep {
    /// Which network.
    pub kind: CountryNetworkKind,
    /// One point per edge share.
    pub points: Vec<CoveragePoint>,
}

/// Results of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct CoverageResult {
    /// Methods compared, in column order.
    pub methods: Vec<Method>,
    /// One sweep per network.
    pub sweeps: Vec<CoverageSweep>,
}

impl CoverageResult {
    /// Render the Figure 7 tables (one block per network).
    pub fn render(&self) -> String {
        let mut output = String::new();
        for sweep in &self.sweeps {
            output.push_str(&format!("Coverage — {} network\n", sweep.kind.name()));
            let mut header = vec!["edge share".to_string()];
            header.extend(self.methods.iter().map(|m| m.short_name().to_string()));
            let mut table = TextTable::new(header);
            for point in &sweep.points {
                let mut row = vec![format!("{:.3}", point.edge_share)];
                row.extend(point.coverage.iter().map(|&c| fmt_opt(c)));
                table.add_row(row);
            }
            output.push_str(&table.render());
            output.push('\n');
        }
        output
    }
}

/// Run the Figure 7 experiment.
///
/// `edge_shares` is the list of backbone sizes (as shares of the original edge
/// count) to sweep; parameter-free methods (MST, DS) are evaluated once and
/// reported at every share, mirroring the single points of the paper's plots.
pub fn run(data: &CountryData, methods: &[Method], edge_shares: &[f64]) -> CoverageResult {
    run_with_threads(data, methods, edge_shares, 0)
}

/// [`run`] with an explicit worker count (`0` = automatic).
///
/// The six networks are swept concurrently — each sweep re-scores every
/// method on its own network, which is the expensive part — and the sweeps
/// are returned in the fixed network order, so the result does not depend on
/// the thread count.
pub fn run_with_threads(
    data: &CountryData,
    methods: &[Method],
    edge_shares: &[f64],
    threads: usize,
) -> CoverageResult {
    let kinds = CountryNetworkKind::all();
    let sweeps = par_map(&kinds, resolve_threads(threads), |_, &kind| {
        let graph = data.network(kind, 0);
        // Pre-score the tunable methods once per network. Inner scoring is
        // pinned to one thread — the per-network sweep is the parallel axis.
        let scored: Vec<Option<backboning::ScoredEdges>> = methods
            .iter()
            .map(|method| {
                if method.is_parameter_free() {
                    None
                } else {
                    method.score_with_threads(graph, 1).ok()
                }
            })
            .collect();
        // Pre-compute the fixed backbones of the parameter-free methods.
        let fixed: Vec<Option<Vec<usize>>> = methods
            .iter()
            .map(|method| {
                if method.is_parameter_free() {
                    method.edge_set_with_threads(graph, 0, 1).ok()
                } else {
                    None
                }
            })
            .collect();

        let mut points = Vec::new();
        for &share in edge_shares {
            let target = ((share * graph.edge_count() as f64).round() as usize).max(1);
            let mut row = Vec::with_capacity(methods.len());
            for (column, method) in methods.iter().enumerate() {
                // The per-share cut goes through the shared Pipeline, the
                // same selection code the `backbone` CLI runs.
                let edge_set = if method.is_parameter_free() {
                    fixed[column].clone()
                } else {
                    scored[column].as_ref().and_then(|s| {
                        Pipeline::new(*method, ThresholdPolicy::TopK(target))
                            .select(graph, s)
                            .ok()
                    })
                };
                let value = edge_set.and_then(|edges| {
                    graph
                        .subgraph_with_edges(&edges)
                        .ok()
                        .map(|backbone| coverage(graph, &backbone))
                });
                row.push(value);
            }
            points.push(CoveragePoint {
                edge_share: share,
                coverage: row,
            });
        }
        CoverageSweep { kind, points }
    });
    CoverageResult {
        methods: methods.to_vec(),
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    #[test]
    fn coverage_grows_with_edge_share() {
        let data = CountryData::generate(&CountryDataConfig::small());
        let methods = vec![
            Method::NaiveThreshold,
            Method::NoiseCorrected,
            Method::MaximumSpanningTree,
        ];
        let result = run(&data, &methods, &[0.05, 0.5]);
        assert_eq!(result.sweeps.len(), 6);
        for sweep in &result.sweeps {
            let small = &sweep.points[0];
            let large = &sweep.points[1];
            for column in 0..2 {
                // Scored methods: more edges can only increase coverage.
                if let (Some(a), Some(b)) = (small.coverage[column], large.coverage[column]) {
                    assert!(
                        b >= a - 1e-12,
                        "{}: coverage not monotone",
                        sweep.kind.name()
                    );
                    assert!(a >= 0.0 && b <= 1.0 + 1e-12);
                }
            }
            // MST coverage is 1 by construction, at every share.
            assert!((small.coverage[2].unwrap() - 1.0).abs() < 1e-12);
        }
        assert!(result.render().contains("Coverage"));
    }
}
