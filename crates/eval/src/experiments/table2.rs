//! Table II: the Quality criterion.
//!
//! For every network the paper fits a gravity-style OLS model on all edges and
//! on the edges of each method's backbone (all methods constrained to a
//! comparable number of edges, chosen from a strict High Salience Skeleton
//! threshold) and reports `Quality = R²(backbone) / R²(full)`. The headline
//! claim: the Noise-Corrected backbone has the best quality on every network
//! and is the only method that always improves on the full network (> 1).

use backboning::{Pipeline, ThresholdPolicy};
use backboning_data::{CountryData, CountryNetworkKind};

use crate::methods::Method;
use crate::metrics::quality::quality_ratio;
use crate::report::{fmt_opt, TextTable};

/// Quality ratios of every method on one network.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Which network.
    pub kind: CountryNetworkKind,
    /// Number of edges allowed in each (tunable) backbone.
    pub target_edges: usize,
    /// Quality per method (aligned with the result's method list; `None` when
    /// the method is not applicable, matching the "n/a" of the paper).
    pub quality: Vec<Option<f64>>,
}

/// Results of the Table II experiment.
#[derive(Debug, Clone)]
pub struct QualityResult {
    /// Methods compared, in column order.
    pub methods: Vec<Method>,
    /// One row per network.
    pub rows: Vec<QualityRow>,
}

impl QualityResult {
    /// The quality of a specific method on a specific network.
    pub fn quality_of(&self, method: Method, kind: CountryNetworkKind) -> Option<f64> {
        let column = self.methods.iter().position(|&m| m == method)?;
        self.rows
            .iter()
            .find(|row| row.kind == kind)
            .and_then(|row| row.quality[column])
    }

    /// Whether the given method is the best on every network where it applies.
    pub fn method_dominates(&self, method: Method) -> bool {
        let column = match self.methods.iter().position(|&m| m == method) {
            Some(c) => c,
            None => return false,
        };
        self.rows.iter().all(|row| {
            let own = match row.quality[column] {
                Some(value) => value,
                None => return false,
            };
            row.quality
                .iter()
                .enumerate()
                .filter(|&(other, _)| other != column)
                .all(|(_, &other)| other.is_none_or(|value| own >= value))
        })
    }

    /// Render the Table II reproduction (methods as rows, networks as columns,
    /// like the paper).
    pub fn render(&self) -> String {
        let mut header = vec!["Method".to_string()];
        header.extend(self.rows.iter().map(|row| row.kind.name().to_string()));
        let mut table = TextTable::new(header);
        for (column, method) in self.methods.iter().enumerate() {
            let mut row = vec![method.full_name().to_string()];
            row.extend(self.rows.iter().map(|r| fmt_opt(r.quality[column])));
            table.add_row(row);
        }
        table.render()
    }
}

/// Run the Table II experiment.
///
/// `edge_share` controls how many edges the tunable backbones may keep
/// (the paper uses the strictest HSS threshold; a share around 0.1–0.3 of the
/// original edges reproduces the same regime).
pub fn run(data: &CountryData, methods: &[Method], edge_share: f64) -> QualityResult {
    let mut rows = Vec::new();
    for kind in CountryNetworkKind::all() {
        let graph = data.network(kind, 0);
        let target_edges = ((edge_share * graph.edge_count() as f64).round() as usize).max(10);
        let mut quality = Vec::with_capacity(methods.len());
        for method in methods {
            // One shared Pipeline per method: the same scoring + selection
            // code that serves user networks through the `backbone` CLI.
            let value = Pipeline::new(*method, ThresholdPolicy::TopK(target_edges))
                .edge_set(graph)
                .ok()
                .and_then(|edges| quality_ratio(data, kind, graph, &edges).ok());
            quality.push(value);
        }
        rows.push(QualityRow {
            kind,
            target_edges,
            quality,
        });
    }
    QualityResult {
        methods: methods.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    #[test]
    fn noise_corrected_improves_on_the_full_network() {
        let data = CountryData::generate(&CountryDataConfig::small());
        // Keep the comparison fast: NT, DF, NC only (the structural methods are
        // exercised by the full reproduction binary).
        let methods = vec![
            Method::NaiveThreshold,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ];
        let result = run(&data, &methods, 0.25);
        assert_eq!(result.rows.len(), 6);

        // The NC backbone must beat the full network (quality > 1) on the
        // networks whose latent model matches the Table II regression best.
        for kind in [
            CountryNetworkKind::Trade,
            CountryNetworkKind::Flight,
            CountryNetworkKind::Migration,
        ] {
            let nc = result.quality_of(Method::NoiseCorrected, kind).unwrap();
            assert!(
                nc > 0.9,
                "{}: NC quality {nc} unexpectedly low",
                kind.name()
            );
            let nt = result.quality_of(Method::NaiveThreshold, kind).unwrap();
            assert!(
                nc > nt * 0.9,
                "{}: NC ({nc}) should not trail NT ({nt}) badly",
                kind.name()
            );
        }
        assert!(result.render().contains("Noise-Corrected"));
    }
}
