//! A uniform registry over the six backboning methods.
//!
//! Every experiment of the paper compares the same six methods; this registry
//! lets the evaluation code sweep them generically, while still respecting the
//! two parameter-free methods (Maximum Spanning Tree and Doubly Stochastic)
//! whose backbone is a fixed edge set rather than a tunable sweep.

use backboning::{
    BackboneExtractor, BackboneResult, DisparityFilter, DoublyStochastic, HighSalienceSkeleton,
    MaximumSpanningTree, NaiveThreshold, NoiseCorrected, ScoredEdges,
};
use backboning_graph::WeightedGraph;

/// The six backboning methods of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Naive weight threshold.
    NaiveThreshold,
    /// Maximum spanning tree (parameter-free).
    MaximumSpanningTree,
    /// Doubly-Stochastic transformation (parameter-free).
    DoublyStochastic,
    /// High Salience Skeleton.
    HighSalienceSkeleton,
    /// Disparity Filter.
    DisparityFilter,
    /// Noise-Corrected backbone (the paper's contribution).
    NoiseCorrected,
}

impl Method {
    /// All six methods, in the plotting order of the paper's figures.
    pub fn all() -> [Method; 6] {
        [
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::DoublyStochastic,
            Method::HighSalienceSkeleton,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ]
    }

    /// The methods that scale to large networks (used by the Figure 9 sweep on
    /// millions of edges; HSS and DS are benchmarked only on small sizes, as
    /// in the paper).
    pub fn scalable() -> [Method; 4] {
        [
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ]
    }

    /// Short identifier used in tables (matches the paper's legend).
    pub fn short_name(&self) -> &'static str {
        match self {
            Method::NaiveThreshold => "NT",
            Method::MaximumSpanningTree => "MST",
            Method::DoublyStochastic => "DS",
            Method::HighSalienceSkeleton => "HSS",
            Method::DisparityFilter => "DF",
            Method::NoiseCorrected => "NC",
        }
    }

    /// Full name used in reports.
    pub fn full_name(&self) -> &'static str {
        match self {
            Method::NaiveThreshold => "Naive Threshold",
            Method::MaximumSpanningTree => "Maximum Spanning Tree",
            Method::DoublyStochastic => "Doubly Stochastic",
            Method::HighSalienceSkeleton => "High Salience Skeleton",
            Method::DisparityFilter => "Disparity Filter",
            Method::NoiseCorrected => "Noise-Corrected",
        }
    }

    /// Whether the method has no tunable parameter (its backbone is a single
    /// fixed edge set).
    pub fn is_parameter_free(&self) -> bool {
        matches!(self, Method::MaximumSpanningTree | Method::DoublyStochastic)
    }

    /// Score every edge of the graph with this method.
    pub fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }

    /// [`Method::score`] with an explicit worker count (`0` = automatic).
    ///
    /// Experiments that already parallelize an outer loop (e.g. the Monte
    /// Carlo trials of Figure 4) pass `1` here so the inner scoring does not
    /// nest a second thread fan-out. Naive thresholding and MST are single
    /// sequential passes and ignore the count.
    pub fn score_with_threads(
        &self,
        graph: &WeightedGraph,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        match self {
            Method::NaiveThreshold => NaiveThreshold::new().score(graph),
            Method::MaximumSpanningTree => MaximumSpanningTree::new().score(graph),
            Method::DoublyStochastic => DoublyStochastic::new().score_with_threads(graph, threads),
            Method::HighSalienceSkeleton => {
                HighSalienceSkeleton::new().score_with_threads(graph, threads)
            }
            Method::DisparityFilter => DisparityFilter::new().score_with_threads(graph, threads),
            Method::NoiseCorrected => NoiseCorrected::default().score_with_threads(graph, threads),
        }
    }

    /// The method's backbone as an edge-index set at a target edge count.
    ///
    /// Scored methods return their `target_edges` highest scoring edges;
    /// parameter-free methods return their fixed backbone regardless of
    /// `target_edges` (matching how the paper compares them).
    pub fn edge_set(
        &self,
        graph: &WeightedGraph,
        target_edges: usize,
    ) -> BackboneResult<Vec<usize>> {
        self.edge_set_with_threads(graph, target_edges, 0)
    }

    /// [`Method::edge_set`] with an explicit worker count (`0` = automatic).
    pub fn edge_set_with_threads(
        &self,
        graph: &WeightedGraph,
        target_edges: usize,
        threads: usize,
    ) -> BackboneResult<Vec<usize>> {
        match self {
            Method::MaximumSpanningTree => Ok(MaximumSpanningTree::new().fixed_edge_set(graph)),
            Method::DoublyStochastic => DoublyStochastic::new().fixed_edge_set(graph),
            _ => Ok(self.score_with_threads(graph, threads)?.top_k(target_edges)),
        }
    }

    /// The method's backbone graph at a target edge count (see [`Method::edge_set`]).
    pub fn backbone(
        &self,
        graph: &WeightedGraph,
        target_edges: usize,
    ) -> BackboneResult<WeightedGraph> {
        Ok(graph.subgraph_with_edges(&self.edge_set(graph, target_edges)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::generators::complete_graph;

    #[test]
    fn registry_covers_six_methods() {
        assert_eq!(Method::all().len(), 6);
        assert_eq!(Method::scalable().len(), 4);
        let names: Vec<&str> = Method::all().iter().map(|m| m.short_name()).collect();
        assert_eq!(names, vec!["NT", "MST", "DS", "HSS", "DF", "NC"]);
        for method in Method::all() {
            assert!(!method.full_name().is_empty());
        }
    }

    #[test]
    fn parameter_free_flags() {
        assert!(Method::MaximumSpanningTree.is_parameter_free());
        assert!(Method::DoublyStochastic.is_parameter_free());
        assert!(!Method::NoiseCorrected.is_parameter_free());
        assert!(!Method::DisparityFilter.is_parameter_free());
    }

    #[test]
    fn every_method_scores_a_dense_graph() {
        let graph = complete_graph(12, 2.0).unwrap();
        for method in Method::all() {
            let scored = method.score(&graph).unwrap();
            assert_eq!(scored.len(), graph.edge_count(), "{}", method.short_name());
        }
    }

    #[test]
    fn edge_sets_respect_target_for_scored_methods() {
        let graph = complete_graph(10, 2.0).unwrap();
        for method in [
            Method::NaiveThreshold,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ] {
            let edges = method.edge_set(&graph, 7).unwrap();
            assert_eq!(edges.len(), 7, "{}", method.short_name());
        }
        // MST ignores the target and returns n − 1 edges.
        let mst = Method::MaximumSpanningTree.edge_set(&graph, 7).unwrap();
        assert_eq!(mst.len(), 9);
    }

    #[test]
    fn backbone_preserves_node_count() {
        let graph = complete_graph(8, 1.0).unwrap();
        for method in Method::all() {
            let backbone = method.backbone(&graph, 10).unwrap();
            assert_eq!(backbone.node_count(), 8, "{}", method.short_name());
        }
    }
}
