//! A uniform registry over the backboning methods.
//!
//! The [`Method`] enum now lives in the core crate (`backboning::Method`),
//! beside the extractors and the shared [`backboning::Pipeline`], so that the
//! evaluation sweeps and the `backbone` CLI select and run methods through
//! the same code. This module re-exports it under the historical
//! `backboning_eval::methods` path.
//!
//! Every experiment of the paper compares the same six methods
//! ([`Method::all`]); the registry also carries the binomial Noise-Corrected
//! variant ([`Method::every`]) used by the CLI.

pub use backboning::Method;
