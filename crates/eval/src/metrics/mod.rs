//! The evaluation criteria of the paper.
//!
//! * [`recovery`] — Jaccard similarity between the recovered and true edge
//!   sets of synthetic networks (Figure 4).
//! * [`mod@coverage`] — the share of originally non-isolated nodes that keep
//!   at least one edge in the backbone (the Topology criterion, Figure 7).
//! * [`quality`] — the ratio of OLS `R²` on the backbone vs on the full
//!   network, with the paper's per-network predictor sets (Table II).
//! * [`mod@stability`] — Spearman correlation of edge weights between
//!   consecutive years restricted to the backbone (Figure 8).
//! * [`validation`] — correlation between NC-predicted and observed cross-year
//!   variance of the transformed edge weights (Table I).

pub mod coverage;
pub mod quality;
pub mod recovery;
pub mod stability;
pub mod validation;

pub use coverage::coverage;
pub use quality::{quality_ratio, QualityModel};
pub use recovery::jaccard_index;
pub use stability::stability;
pub use validation::variance_validation_correlation;
