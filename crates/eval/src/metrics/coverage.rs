//! Coverage: the Topology criterion (Figure 7).

use backboning_graph::WeightedGraph;

/// Coverage of a backbone: the share of the original network's non-isolated
/// nodes that keep at least one edge in the backbone,
///
/// ```text
/// Coverage = (|V| − |I_backbone|) / (|V| − |I_original|)
/// ```
///
/// Returns 1 for an original network without any non-isolated node (nothing
/// can be lost).
pub fn coverage(original: &WeightedGraph, backbone: &WeightedGraph) -> f64 {
    assert_eq!(
        original.node_count(),
        backbone.node_count(),
        "backbone must preserve the node set ({} vs {})",
        original.node_count(),
        backbone.node_count()
    );
    let original_connected = original.non_isolated_node_count();
    if original_connected == 0 {
        return 1.0;
    }
    backbone.non_isolated_node_count() as f64 / original_connected as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, WeightedGraph};

    fn original() -> WeightedGraph {
        WeightedGraph::from_edges(
            Direction::Undirected,
            5,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)],
        )
        .unwrap()
    }

    #[test]
    fn full_backbone_has_full_coverage() {
        let graph = original();
        assert_eq!(coverage(&graph, &graph), 1.0);
    }

    #[test]
    fn dropping_a_nodes_last_edge_reduces_coverage() {
        let graph = original();
        // Keep only edges 1 and 2: node 0 becomes isolated (3 of 4 connected nodes remain).
        let backbone = graph.subgraph_with_edges(&[1, 2]).unwrap();
        assert!((coverage(&graph, &backbone) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn already_isolated_nodes_do_not_count() {
        let graph = original(); // node 4 is isolated in the original
        let backbone = graph.subgraph_with_edges(&[0]).unwrap(); // keeps nodes 0 and 1
        assert!((coverage(&graph, &backbone) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_backbone_has_zero_coverage() {
        let graph = original();
        let backbone = graph.subgraph_with_edges(&[]).unwrap();
        assert_eq!(coverage(&graph, &backbone), 0.0);
    }

    #[test]
    fn edgeless_original_network() {
        let graph = WeightedGraph::with_nodes(Direction::Undirected, 3);
        assert_eq!(coverage(&graph, &graph), 1.0);
    }

    #[test]
    #[should_panic(expected = "preserve the node set")]
    fn mismatched_node_sets_panic() {
        let graph = original();
        let other = WeightedGraph::with_nodes(Direction::Undirected, 3);
        coverage(&graph, &other);
    }
}
