//! Variance validation: Table I of the paper.
//!
//! The Noise-Corrected backbone's central claim is that it estimates the
//! *variance* of the transformed edge weights correctly. Because the country
//! networks are observed in several years, the paper validates the claim by
//! correlating the NC-predicted variance of `L̃ij` with the variance actually
//! observed across the yearly snapshots.

use backboning::{BackboneExtractor, NoiseCorrected};
use backboning_graph::WeightedGraph;
use backboning_stats::pearson;
use backboning_stats::{StatsError, StatsResult};

/// Correlation between the NC-predicted variance of the transformed edge
/// weight and its observed variance across yearly observations.
///
/// For every edge of the first year that also appears in every later year,
/// the predicted variance is `V[L̃ij]` computed by the NC backbone on the
/// first year, and the observed variance is the sample variance of the
/// transformed lift across all years. The function returns the Pearson
/// correlation between the two, computed on ranks of magnitude (log–log),
/// mirroring how the paper treats the broadly distributed variances.
pub fn variance_validation_correlation(years: &[WeightedGraph]) -> StatsResult<f64> {
    if years.len() < 2 {
        return Err(StatsError::InvalidParameter {
            parameter: "years",
            message: format!("need at least 2 yearly observations, got {}", years.len()),
        });
    }
    let nc = NoiseCorrected::default();
    let first_year = &years[0];
    let scored_first = nc
        .score(first_year)
        .map_err(|e| StatsError::InvalidParameter {
            parameter: "years",
            message: format!("cannot score first year: {e}"),
        })?;

    // Transformed lift of every year, keyed by (source, target) of the first year.
    let mut yearly_lifts: Vec<std::collections::HashMap<(usize, usize), f64>> = Vec::new();
    for year in years {
        let scored = nc.score(year).map_err(|e| StatsError::InvalidParameter {
            parameter: "years",
            message: format!("cannot score year: {e}"),
        })?;
        let mut lift_by_pair = std::collections::HashMap::new();
        for edge in scored.iter() {
            lift_by_pair.insert((edge.source, edge.target), edge.raw_score.unwrap_or(0.0));
        }
        yearly_lifts.push(lift_by_pair);
    }

    let mut predicted = Vec::new();
    let mut observed = Vec::new();
    for edge in scored_first.iter() {
        let key = (edge.source, edge.target);
        // Only edges observed in every year have a meaningful sample variance.
        let lifts: Vec<f64> = yearly_lifts
            .iter()
            .filter_map(|year| year.get(&key).copied())
            .collect();
        if lifts.len() < years.len() {
            continue;
        }
        let mean = lifts.iter().sum::<f64>() / lifts.len() as f64;
        let sample_variance =
            lifts.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / (lifts.len() - 1) as f64;
        let predicted_variance = edge.std_dev.map(|s| s * s).unwrap_or(0.0);
        if predicted_variance > 0.0 && sample_variance > 0.0 {
            predicted.push(predicted_variance.ln());
            observed.push(sample_variance.ln());
        }
    }
    if predicted.len() < 10 {
        return Err(StatsError::InvalidParameter {
            parameter: "years",
            message: format!(
                "only {} edges observed in every year with positive variances",
                predicted.len()
            ),
        });
    }
    pearson(&predicted, &observed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::{CountryData, CountryDataConfig, CountryNetworkKind};

    #[test]
    fn needs_at_least_two_years() {
        let data = CountryData::generate(&CountryDataConfig::small());
        let single = vec![data.network(CountryNetworkKind::Trade, 0).clone()];
        assert!(variance_validation_correlation(&single).is_err());
    }

    #[test]
    fn predicted_variance_correlates_with_observed_variance() {
        // The synthetic networks are generated with binomial-like count noise,
        // which is exactly the NC null model, so the predicted and observed
        // variances must correlate positively — the Table I claim.
        let data = CountryData::generate(&CountryDataConfig::small());
        for kind in [CountryNetworkKind::Trade, CountryNetworkKind::Flight] {
            let years = data.yearly_networks(kind).to_vec();
            let correlation = variance_validation_correlation(&years).unwrap();
            assert!(
                correlation > 0.2,
                "{}: validation correlation {correlation} too low",
                kind.name()
            );
        }
    }
}
