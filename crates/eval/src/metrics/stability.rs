//! Stability: year-on-year correlation of backbone edge weights (Figure 8).

use backboning_graph::WeightedGraph;
use backboning_stats::spearman;
use backboning_stats::StatsResult;

/// Stability of a backbone between two observations of the same network:
/// the Spearman correlation between the year-`t` and year-`t+1` weights of
/// the edges contained in the backbone.
///
/// Edges that disappear in the later observation enter with weight zero —
/// exactly the "wild fluctuation" the criterion is meant to punish.
pub fn stability(
    backbone_edges: &[usize],
    year_t: &WeightedGraph,
    year_t_plus_one: &WeightedGraph,
) -> StatsResult<f64> {
    let mut weights_t = Vec::with_capacity(backbone_edges.len());
    let mut weights_t1 = Vec::with_capacity(backbone_edges.len());
    for &index in backbone_edges {
        let edge = year_t.edge(index).expect("edge index in range");
        weights_t.push(edge.weight);
        weights_t1.push(
            year_t_plus_one
                .edge_weight(edge.source, edge.target)
                .unwrap_or(0.0),
        );
    }
    spearman(&weights_t, &weights_t1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, WeightedGraph};

    fn year(weights: &[(usize, usize, f64)]) -> WeightedGraph {
        WeightedGraph::from_edges(Direction::Directed, 5, weights.to_vec()).unwrap()
    }

    #[test]
    fn identical_years_have_perfect_stability() {
        let t = year(&[(0, 1, 5.0), (1, 2, 3.0), (2, 3, 8.0), (3, 4, 1.0)]);
        let edges: Vec<usize> = (0..t.edge_count()).collect();
        let s = stability(&edges, &t, &t).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_preserving_changes_keep_stability_high() {
        let t = year(&[(0, 1, 5.0), (1, 2, 3.0), (2, 3, 8.0), (3, 4, 1.0)]);
        let t1 = year(&[(0, 1, 6.0), (1, 2, 3.5), (2, 3, 9.0), (3, 4, 1.5)]);
        let edges: Vec<usize> = (0..t.edge_count()).collect();
        assert!((stability(&edges, &t, &t1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_reversal_gives_negative_stability() {
        let t = year(&[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)]);
        let t1 = year(&[(0, 1, 4.0), (1, 2, 3.0), (2, 3, 2.0), (3, 4, 1.0)]);
        let edges: Vec<usize> = (0..t.edge_count()).collect();
        assert!((stability(&edges, &t, &t1).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_edges_count_as_zero() {
        let t = year(&[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let t1 = year(&[(0, 1, 1.0), (2, 3, 3.0)]); // edge (1,2) vanished
        let edges: Vec<usize> = (0..t.edge_count()).collect();
        let s = stability(&edges, &t, &t1).unwrap();
        assert!(s < 1.0);
        assert!(s > 0.0);
    }

    #[test]
    fn restricting_to_a_backbone_changes_the_estimate() {
        // The noisy edge (3,4) collapses next year; excluding it from the
        // backbone raises stability.
        let t = year(&[(0, 1, 10.0), (1, 2, 20.0), (2, 3, 30.0), (3, 4, 5.0)]);
        let t1 = year(&[(0, 1, 11.0), (1, 2, 21.0), (2, 3, 29.0), (3, 4, 0.001)]);
        let all: Vec<usize> = (0..t.edge_count()).collect();
        let backbone = vec![0, 1, 2];
        let with_noise = stability(&all, &t, &t1).unwrap();
        let without_noise = stability(&backbone, &t, &t1).unwrap();
        assert!(without_noise >= with_noise);
        assert!((without_noise - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_backbone_is_an_error() {
        let t = year(&[(0, 1, 1.0)]);
        assert!(stability(&[], &t, &t).is_err());
    }
}
