//! Recovery: Jaccard similarity between edge sets (Figure 4).

use std::collections::HashSet;

/// Jaccard index between two edge-index sets: `|A ∩ B| / |A ∪ B|`.
///
/// Equals 1 when the sets are identical and 0 when they are disjoint. Two
/// empty sets are considered identical (Jaccard 1).
pub fn jaccard_index(a: &[usize], b: &[usize]) -> f64 {
    let set_a: HashSet<usize> = a.iter().copied().collect();
    let set_b: HashSet<usize> = b.iter().copied().collect();
    if set_a.is_empty() && set_b.is_empty() {
        return 1.0;
    }
    let intersection = set_a.intersection(&set_b).count();
    let union = set_a.union(&set_b).count();
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard_index(&[1, 2, 3], &[3, 2, 1]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard_index(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {1,2,3} vs {2,3,4}: intersection 2, union 4.
        assert!((jaccard_index(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_ignored() {
        assert_eq!(jaccard_index(&[1, 1, 2], &[2, 2, 1]), 1.0);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(jaccard_index(&[], &[]), 1.0);
        assert_eq!(jaccard_index(&[1], &[]), 0.0);
        assert_eq!(jaccard_index(&[], &[1]), 0.0);
    }
}
