//! Quality: the predictive-power criterion (Table II).
//!
//! For every network the paper fits an OLS model
//! `log(N_ij + 1) = β X_ij + ε_ij` twice — once on all observed edges
//! (`M_full`) and once restricted to the edges kept by a backbone (`M_bb`) —
//! and reports `Quality = R²(M_bb) / R²(M_full)`. A value above one means the
//! backbone contains the edges that the gravity-style model can actually
//! explain, i.e. the backbone removed noise rather than signal.

use backboning_data::{CountryData, CountryNetworkKind};
use backboning_graph::WeightedGraph;
use backboning_stats::{OlsModel, StatsResult};

/// The per-network regression specification of Table II.
#[derive(Debug, Clone)]
pub struct QualityModel {
    /// Which country network the model explains.
    pub kind: CountryNetworkKind,
    /// Predictor names in design-matrix order.
    pub predictor_names: Vec<&'static str>,
}

impl QualityModel {
    /// The paper's predictor set for a given network:
    ///
    /// * every model includes log geographic distance;
    /// * all networks except Country Space and Ownership include the log
    ///   populations of both endpoints;
    /// * Business adds trade between the countries, Country Space adds the
    ///   economic complexity of both countries, Migration adds common language
    ///   and shared continent ("common history"), Ownership adds greenfield
    ///   FDI, Trade adds business travel; Flight has no extra predictor.
    pub fn for_kind(kind: CountryNetworkKind) -> Self {
        let mut predictor_names = vec!["log_distance"];
        if !matches!(
            kind,
            CountryNetworkKind::CountrySpace | CountryNetworkKind::Ownership
        ) {
            predictor_names.push("log_population_origin");
            predictor_names.push("log_population_destination");
        }
        match kind {
            CountryNetworkKind::Business => predictor_names.push("log_trade"),
            CountryNetworkKind::CountrySpace => {
                predictor_names.push("eci_origin");
                predictor_names.push("eci_destination");
            }
            CountryNetworkKind::Flight => {}
            CountryNetworkKind::Migration => {
                predictor_names.push("common_language");
                predictor_names.push("common_history");
            }
            CountryNetworkKind::Ownership => predictor_names.push("log_fdi"),
            CountryNetworkKind::Trade => predictor_names.push("log_business_travel"),
        }
        QualityModel {
            kind,
            predictor_names,
        }
    }

    /// Predictor values for one ordered country pair.
    fn predictors(&self, data: &CountryData, origin: usize, destination: usize) -> Vec<f64> {
        let world = &data.world;
        let mut values = vec![(world.distance_km(origin, destination) + 1.0).ln()];
        if !matches!(
            self.kind,
            CountryNetworkKind::CountrySpace | CountryNetworkKind::Ownership
        ) {
            values.push(world.country(origin).population.ln());
            values.push(world.country(destination).population.ln());
        }
        match self.kind {
            CountryNetworkKind::Business => {
                let trade = data
                    .network(CountryNetworkKind::Trade, 0)
                    .edge_weight(origin, destination)
                    .unwrap_or(0.0);
                values.push((trade + 1.0).ln());
            }
            CountryNetworkKind::CountrySpace => {
                values.push(world.country(origin).eci);
                values.push(world.country(destination).eci);
            }
            CountryNetworkKind::Flight => {}
            CountryNetworkKind::Migration => {
                values.push(f64::from(world.common_language(origin, destination)));
                values.push(f64::from(world.same_continent(origin, destination)));
            }
            CountryNetworkKind::Ownership => {
                values.push((data.fdi_between(origin, destination) + 1.0).ln());
            }
            CountryNetworkKind::Trade => {
                let business = data
                    .network(CountryNetworkKind::Business, 0)
                    .edge_weight(origin, destination)
                    .unwrap_or(0.0);
                values.push((business + 1.0).ln());
            }
        }
        values
    }

    /// Fit the model on the observations given by `edges` (pairs taken from
    /// `network`) and return the `R²`.
    pub fn r_squared(
        &self,
        data: &CountryData,
        network: &WeightedGraph,
        edge_indices: &[usize],
    ) -> StatsResult<f64> {
        let mut response = Vec::with_capacity(edge_indices.len());
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); self.predictor_names.len()];
        for &index in edge_indices {
            let edge = network.edge(index).expect("edge index in range");
            response.push((edge.weight + 1.0).ln());
            let predictors = self.predictors(data, edge.source, edge.target);
            for (column, value) in columns.iter_mut().zip(predictors) {
                column.push(value);
            }
        }
        let mut model = OlsModel::new();
        for (name, column) in self.predictor_names.iter().zip(columns) {
            model = model.predictor(*name, column);
        }
        Ok(model.fit(&response)?.r_squared)
    }
}

/// Quality of a backbone: `R²` of the Table II model restricted to the
/// backbone's edges divided by the `R²` on all edges of the network.
pub fn quality_ratio(
    data: &CountryData,
    kind: CountryNetworkKind,
    network: &WeightedGraph,
    backbone_edges: &[usize],
) -> StatsResult<f64> {
    let model = QualityModel::for_kind(kind);
    let all_edges: Vec<usize> = (0..network.edge_count()).collect();
    let full = model.r_squared(data, network, &all_edges)?;
    let backbone = model.r_squared(data, network, backbone_edges)?;
    Ok(backbone / full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_data::CountryDataConfig;

    fn data() -> CountryData {
        CountryData::generate(&CountryDataConfig::small())
    }

    #[test]
    fn predictor_sets_match_the_paper() {
        let business = QualityModel::for_kind(CountryNetworkKind::Business);
        assert!(business.predictor_names.contains(&"log_trade"));
        assert!(business.predictor_names.contains(&"log_population_origin"));

        let country_space = QualityModel::for_kind(CountryNetworkKind::CountrySpace);
        assert!(country_space.predictor_names.contains(&"eci_origin"));
        assert!(!country_space
            .predictor_names
            .contains(&"log_population_origin"));

        let flight = QualityModel::for_kind(CountryNetworkKind::Flight);
        assert_eq!(
            flight.predictor_names,
            vec![
                "log_distance",
                "log_population_origin",
                "log_population_destination"
            ]
        );

        let migration = QualityModel::for_kind(CountryNetworkKind::Migration);
        assert!(migration.predictor_names.contains(&"common_language"));

        let ownership = QualityModel::for_kind(CountryNetworkKind::Ownership);
        assert!(ownership.predictor_names.contains(&"log_fdi"));
        assert!(!ownership.predictor_names.contains(&"log_population_origin"));

        let trade = QualityModel::for_kind(CountryNetworkKind::Trade);
        assert!(trade.predictor_names.contains(&"log_business_travel"));
    }

    #[test]
    fn gravity_model_explains_the_synthetic_networks() {
        // The synthetic networks are built from gravity intensities, so the
        // full-network R² must be clearly positive.
        let data = data();
        for kind in [CountryNetworkKind::Trade, CountryNetworkKind::Flight] {
            let network = data.network(kind, 0);
            let model = QualityModel::for_kind(kind);
            let all: Vec<usize> = (0..network.edge_count()).collect();
            let r2 = model.r_squared(&data, network, &all).unwrap();
            assert!(r2 > 0.2, "{}: R² = {r2}", kind.name());
            assert!(r2 < 1.0);
        }
    }

    #[test]
    fn quality_ratio_of_the_full_network_is_one() {
        let data = data();
        let kind = CountryNetworkKind::Migration;
        let network = data.network(kind, 0);
        let all: Vec<usize> = (0..network.edge_count()).collect();
        let ratio = quality_ratio(&data, kind, network, &all).unwrap();
        assert!((ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_observations_is_an_error() {
        let data = data();
        let kind = CountryNetworkKind::Trade;
        let network = data.network(kind, 0);
        assert!(quality_ratio(&data, kind, network, &[0, 1]).is_err());
    }
}
