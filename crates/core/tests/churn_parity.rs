//! Churn-parity property suite: randomized PATCH sequences over generated
//! substrates, pinning that the incremental `delta_rescore` path is *exact*.
//!
//! For every local method (nt / df / nc / ds), any randomized
//! add / remove / reweight sequence must yield scores **bit-identical** to
//! from-scratch scoring on the final patched graph, invariant under
//! 1 / 2 / 3 / 8 scoring threads and under any batch split of the same op
//! sequence; the pipeline's kept-edge sets must agree too. Doubly
//! stochastic is allowed to fail (Sinkhorn non-convergence on a mutated
//! graph) only if the from-scratch pass fails identically.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use backboning::delta::{apply_batch, delta_rescore, delta_rescore_in_place};
use backboning::{Method, Pipeline, ScoredEdges, ThresholdPolicy};
use backboning_gen::ScenarioSpec;
use backboning_graph::{CsrGraph, DeltaBatch, DeltaGraph};

/// Small versions of the bench-matrix substrate families.
const SPECS: [&str; 3] = [
    "ba:n=80,m=3,w=powerlaw(2.5),noise=0.1,seed=4242",
    "er:n=80,e=240,w=uniform(10),noise=0.1,seed=4242",
    "sb:n=80,b=4,pin=0.2,pout=0.02,w=uniform(10),noise=0.1,seed=4242",
];

const METHODS: [Method; 4] = [
    Method::NaiveThreshold,
    Method::DisparityFilter,
    Method::NoiseCorrected,
    Method::DoublyStochastic,
];

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn substrate(spec: &str) -> CsrGraph {
    ScenarioSpec::parse(spec)
        .expect("valid spec")
        .generate()
        .expect("generation succeeds")
}

/// Turn abstract proptest choices into always-valid delta lines by
/// interpreting them against a shadow of the evolving edge list. The shadow
/// mirrors `DeltaGraph` order exactly: removals delete in place (survivors
/// keep relative order), additions append.
fn realize_ops(base: &CsrGraph, raw: &[(u8, usize, usize, f64)]) -> Vec<String> {
    let node_range = base.node_count() + 4; // occasionally grow the graph
    let mut edges: Vec<(usize, usize, f64)> = base
        .edges()
        .map(|e| (e.source, e.target, e.weight))
        .collect();
    let mut present: HashSet<(usize, usize)> = edges.iter().map(|&(s, t, _)| (s, t)).collect();
    let mut lines = Vec::new();
    for &(choice, a, b, weight) in raw {
        match choice % 3 {
            0 => {
                let source = a % node_range;
                let target = b % node_range;
                let (s, t) = (source.min(target), source.max(target));
                if present.contains(&(s, t)) {
                    let position = edges.iter().position(|&(es, et, _)| (es, et) == (s, t));
                    if let Some(position) = position {
                        edges[position].2 = weight;
                        lines.push(format!("reweight {s} {t} {weight}"));
                    }
                } else {
                    present.insert((s, t));
                    edges.push((s, t, weight));
                    lines.push(format!("add {s} {t} {weight}"));
                }
            }
            1 => {
                if edges.is_empty() {
                    continue;
                }
                let position = a % edges.len();
                let (s, t, _) = edges.remove(position);
                present.remove(&(s, t));
                lines.push(format!("remove {s} {t}"));
            }
            _ => {
                if edges.is_empty() {
                    continue;
                }
                let position = a % edges.len();
                edges[position].2 = weight;
                let (s, t, _) = edges[position];
                lines.push(format!("reweight {s} {t} {weight}"));
            }
        }
    }
    lines
}

/// Split `lines` into batches following the proptest-chosen chunk sizes
/// (cycled); an empty pattern means one batch with everything.
fn split_batches(lines: &[String], pattern: &[usize]) -> Vec<String> {
    if lines.is_empty() {
        return Vec::new();
    }
    if pattern.is_empty() {
        return vec![lines.join("\n")];
    }
    let mut batches = Vec::new();
    let mut cursor = 0;
    let mut turn = 0;
    while cursor < lines.len() {
        let take = pattern[turn % pattern.len()]
            .max(1)
            .min(lines.len() - cursor);
        batches.push(lines[cursor..cursor + take].join("\n"));
        cursor += take;
        turn += 1;
    }
    batches
}

/// Apply a batch sequence, chaining incremental rescores per method, and
/// return the final graph plus per-method incremental scores (`None` where
/// the method errored — allowed only if from-scratch errors identically).
fn churn(
    base: &CsrGraph,
    batches: &[String],
    threads: usize,
) -> (CsrGraph, HashMap<&'static str, Option<ScoredEdges>>) {
    let mut graph = base.clone();
    let mut scores: HashMap<&'static str, Option<ScoredEdges>> = METHODS
        .iter()
        .map(|&m| (m.score_name(), m.score_with_threads(&graph, threads).ok()))
        .collect();
    for text in batches {
        let batch = DeltaBatch::parse_tsv(text).expect("realized ops parse");
        let (patched, effect) = apply_batch(&graph, &batch).expect("realized ops apply");
        for &method in &METHODS {
            let name = method.score_name();
            let next = match scores.get(name).and_then(|s| s.as_ref()) {
                Some(previous) => {
                    // The borrowing and the consuming (in-place) forms must
                    // agree bit-for-bit — the latter is the maintained-state
                    // fast path that skips the carry-over copy.
                    let borrowed = delta_rescore(method, &patched, previous, &effect, threads).ok();
                    let consumed = delta_rescore_in_place(
                        method,
                        &patched,
                        previous.clone(),
                        &effect,
                        threads,
                    )
                    .ok();
                    assert_eq!(
                        borrowed,
                        consumed,
                        "{} in-place rescore diverged from the borrowing form",
                        method.score_name()
                    );
                    consumed
                }
                None => method.score_with_threads(&patched, threads).ok(),
            };
            scores.insert(name, next);
        }
        graph = patched;
    }
    (graph, scores)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: incremental scores after arbitrary churn are
    /// bit-identical to from-scratch scores on the final graph, for every
    /// thread count and any batch split, and the pipeline keeps the same
    /// edge sets.
    #[test]
    fn incremental_rescoring_is_exact_under_churn(
        spec_index in 0usize..SPECS.len(),
        raw in proptest::collection::vec(
            ((0u8..6), (0usize..10_000), (0usize..10_000), 0.05f64..25.0),
            1..24,
        ),
        pattern in proptest::collection::vec(1usize..6, 0..5),
    ) {
        let base = substrate(SPECS[spec_index]);
        let lines = realize_ops(&base, &raw);
        if lines.is_empty() {
            return Ok(());
        }
        let single = split_batches(&lines, &[]);
        let split = split_batches(&lines, &pattern);

        let (final_graph, single_scores) = churn(&base, &single, 1);
        // The overlay's compaction equals a from-scratch build of the same
        // edge list, so both paths score the identical graph object.
        {
            let mut delta = DeltaGraph::from_csr(&base);
            for text in &split {
                delta.apply(&DeltaBatch::parse_tsv(text).unwrap()).unwrap();
            }
            prop_assert_eq!(&delta.to_csr().unwrap(), &final_graph);
        }

        for threads in THREAD_COUNTS {
            let (graph_t, incremental) = churn(&base, &split, threads);
            prop_assert_eq!(&graph_t, &final_graph);
            for &method in &METHODS {
                let name = method.score_name();
                let fresh = method.score_with_threads(&final_graph, threads).ok();
                let got = incremental.get(name).cloned().flatten();
                match (&fresh, &got) {
                    (Some(fresh), Some(got)) => {
                        prop_assert!(
                            got == fresh,
                            "{} scores at {} threads differ from from-scratch",
                            name,
                            threads
                        );
                        // Batch-split invariance against the single-batch run.
                        if let Some(Some(single_run)) = single_scores.get(name) {
                            prop_assert!(
                                got == single_run,
                                "{} scores differ across batch splits",
                                name
                            );
                        }
                        // Pipeline parity on the kept edge set.
                        let pipeline = Pipeline::new(method, ThresholdPolicy::TopShare(0.4))
                            .with_threads(threads);
                        let from_incremental = pipeline
                            .run_with_scores(&final_graph, Arc::new(got.clone()))
                            .unwrap();
                        let from_fresh = pipeline
                            .run_with_scores(&final_graph, Arc::new(fresh.clone()))
                            .unwrap();
                        prop_assert!(
                            from_incremental.kept == from_fresh.kept,
                            "{} pipeline edge sets differ",
                            name
                        );
                    }
                    (None, None) => {} // both failed (DS non-convergence) — parity holds
                    (fresh, got) => prop_assert!(
                        false,
                        "{}: from-scratch ok={} but incremental ok={}",
                        name,
                        fresh.is_some(),
                        got.is_some()
                    ),
                }
            }
        }
    }
}
