//! Cross-family method invariants on generated substrates.
//!
//! The `csr_scoring_parity` suite pins CSR-vs-adjacency bit-parity on small
//! random graphs; this suite re-verifies the same invariants — plus thread
//! invariance and the hss-approx error bound — on every `backboning_gen`
//! family (BA, ER, geometric, stochastic block), so method bugs that only
//! surface on community-structured, spatial or heavy-tailed substrates have
//! a test to fail.

use backboning::high_salience::max_salience_error_bound;
use backboning::{HighSalienceSkeleton, Method, Pipeline, ThresholdPolicy};
use backboning_gen::ScenarioSpec;
use backboning_graph::{CsrGraph, WeightedGraph};

/// One spec per family, each with a different weight distribution and the
/// paper's noise layer on — small enough for exact HSS, structured enough to
/// exercise hubs (ba), homogeneity (er), spatial clustering (geo) and
/// communities (sb).
const FAMILY_SPECS: [&str; 4] = [
    "ba:n=400,m=3,w=powerlaw(2.5),noise=0.1,seed=4242",
    "er:n=400,e=1200,w=uniform(10),noise=0.1,seed=4242",
    "geo:n=400,r=0.08,w=lognormal(0,1),noise=0.1,seed=4242",
    "sb:n=400,b=4,pin=0.08,pout=0.004,w=uniform(10),noise=0.1,seed=4242",
];

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn substrate(text: &str) -> (CsrGraph, WeightedGraph) {
    let csr = ScenarioSpec::parse(text).unwrap().generate().unwrap();
    let adjacency = csr.to_weighted_graph().unwrap();
    (csr, adjacency)
}

/// Every scalable method scores the CSR graph bit-identically to its
/// adjacency twin, on every family.
#[test]
fn scalable_methods_csr_adjacency_parity_per_family() {
    for text in FAMILY_SPECS {
        let (csr, adjacency) = substrate(text);
        assert!(csr.edge_count() > 100, "{text}: degenerate substrate");
        for method in Method::scalable() {
            let reference = method
                .score(&adjacency)
                .unwrap_or_else(|error| panic!("{text} / {method}: {error}"));
            let compact = method.score(&csr).unwrap();
            assert!(
                reference == compact,
                "{text}: {method} scores differ between adjacency and CSR"
            );
        }
    }
}

/// Every scalable method is thread-invariant on every family: scores at
/// 2/3/8 threads are bit-identical to the single-threaded run, on both
/// representations.
#[test]
fn scalable_methods_thread_invariance_per_family() {
    for text in FAMILY_SPECS {
        let (csr, adjacency) = substrate(text);
        for method in Method::scalable() {
            let baseline = method.score_with_threads(&csr, 1).unwrap();
            for threads in THREAD_COUNTS {
                let compact = method.score_with_threads(&csr, threads).unwrap();
                assert!(
                    baseline == compact,
                    "{text}: {method} CSR scores change at {threads} threads"
                );
                let reference = method.score_with_threads(&adjacency, threads).unwrap();
                assert!(
                    baseline == reference,
                    "{text}: {method} adjacency scores change at {threads} threads"
                );
            }
        }
    }
}

/// The full score → select pipeline keeps exactly the same edge set on
/// either representation, per family and method.
#[test]
fn pipeline_edge_sets_match_across_representations_per_family() {
    for text in FAMILY_SPECS {
        let (csr, adjacency) = substrate(text);
        for method in Method::scalable() {
            let policy = ThresholdPolicy::TopShare(0.1);
            let reference = Pipeline::new(method, policy).run(&adjacency).unwrap();
            let compact = Pipeline::new(method, policy).run(&csr).unwrap();
            assert_eq!(
                reference.kept, compact.kept,
                "{text}: {method} keeps different edges on CSR vs adjacency"
            );
        }
    }
}

/// The Hoeffding bound of hss-approx holds on a community substrate: max
/// per-edge deviation between sampled (256 roots) and exact salience stays
/// within `max_salience_error_bound` at 95% confidence — the same check
/// `bench_snapshot` records for the ba/er substrates, here on stochastic
/// block and at every thread count.
#[test]
fn hss_approx_bound_holds_on_stochastic_block() {
    let (csr, _) = substrate(FAMILY_SPECS[3]);
    let hss = HighSalienceSkeleton::new();
    let exact = hss.score_with_threads(&csr, 0).unwrap();
    let roots = 256;
    let bound = max_salience_error_bound(roots, csr.edge_count(), 0.95);
    assert!(
        bound > 0.0 && bound < 1.0,
        "bound {bound} is not informative"
    );

    let baseline = hss
        .score_sampled_with_threads(&csr, roots, 4242, 1)
        .unwrap();
    for threads in THREAD_COUNTS {
        let sampled = hss
            .score_sampled_with_threads(&csr, roots, 4242, threads)
            .unwrap();
        assert!(
            baseline == sampled,
            "hss-approx on sb substrate changes at {threads} threads"
        );
        let max_deviation = exact
            .iter()
            .zip(sampled.iter())
            .map(|(exact_edge, sampled_edge)| (exact_edge.score - sampled_edge.score).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_deviation <= bound,
            "max deviation {max_deviation} exceeds 95% bound {bound} at {threads} threads"
        );
    }
}
