//! Thread-parity property tests for the [`backboning::Pipeline`], extending
//! the `parallel_parity` harness to the full score → select → backbone flow:
//! the kept edge set must be **bit-identical** at 1, 2 and 4 worker threads
//! for every method and every threshold policy.

use proptest::prelude::*;

use backboning::{Method, Pipeline, ThresholdPolicy};
use backboning_graph::{Direction, WeightedGraph};

/// Strategy: a small random weighted graph of either direction, possibly with
/// accumulated duplicate edges, isolated nodes and weak weights (the same
/// shape as the `parallel_parity` scoring harness).
fn random_graph() -> impl Strategy<Value = WeightedGraph> {
    (
        proptest::collection::vec(((0usize..12), (0usize..12), 0.05f64..50.0), 1..80),
        0usize..2,
    )
        .prop_map(|(edges, directed)| {
            let direction = if directed == 0 {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut graph = WeightedGraph::with_nodes(direction, 12);
            for (source, target, weight) in edges {
                if source != target {
                    graph.add_edge(source, target, weight).unwrap();
                }
            }
            graph
        })
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn policies() -> [ThresholdPolicy; 4] {
    [
        ThresholdPolicy::Score(0.5),
        ThresholdPolicy::TopK(7),
        ThresholdPolicy::TopShare(0.4),
        ThresholdPolicy::Coverage(0.8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every method × policy keeps exactly the same edge set at every thread
    /// count (Doubly Stochastic may fail when no scaling exists — then it
    /// must fail at every thread count).
    #[test]
    fn pipeline_edge_sets_are_thread_count_invariant(graph in random_graph()) {
        for method in Method::every() {
            for policy in policies() {
                let reference = Pipeline::new(method, policy)
                    .with_threads(1)
                    .edge_set(&graph);
                for threads in THREAD_COUNTS {
                    let result = Pipeline::new(method, policy)
                        .with_threads(threads)
                        .edge_set(&graph);
                    match (&reference, &result) {
                        (Ok(expected), Ok(got)) => {
                            prop_assert!(
                                expected == got,
                                "{} × {} differs at {} threads",
                                method,
                                policy,
                                threads
                            );
                        }
                        (Err(_), Err(_)) => {
                            // Only DS may fail (no feasible scaling).
                            prop_assert!(method == Method::DoublyStochastic);
                        }
                        _ => prop_assert!(
                            false,
                            "{} × {}: success at 1 thread but not at {}",
                            method,
                            policy,
                            threads
                        ),
                    }
                }
            }
        }
    }

    /// The full run is deterministic: two identical runs produce the same
    /// scores, kept set and backbone (wall time aside).
    #[test]
    fn pipeline_runs_are_reproducible(graph in random_graph()) {
        for method in [Method::NoiseCorrected, Method::DisparityFilter, Method::NaiveThreshold] {
            let policy = ThresholdPolicy::TopShare(0.5);
            let first = Pipeline::new(method, policy).run(&graph).unwrap();
            let second = Pipeline::new(method, policy).run(&graph).unwrap();
            prop_assert_eq!(&first.scored, &second.scored);
            prop_assert_eq!(&first.kept, &second.kept);
            prop_assert_eq!(first.backbone.edge_count(), second.backbone.edge_count());
            prop_assert!((first.coverage - second.coverage).abs() < 1e-15);
        }
    }
}
