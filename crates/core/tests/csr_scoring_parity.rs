//! Property tests for the compact-core refactor: every backbone method must
//! score a [`CsrGraph`] **bit-identically** to the adjacency
//! [`WeightedGraph`] it was built from, and the full score → select pipeline
//! must keep exactly the same edge set on either representation.
//!
//! Scoring is monomorphized over [`backboning_graph::GraphView`], so both
//! paths traverse edges in the same order and sum in the same order — the
//! parity here is exact f64 equality, not tolerance-based.

use proptest::prelude::*;

use backboning::{Method, Pipeline, ThresholdPolicy};
use backboning_graph::{CsrGraph, Direction, WeightedGraph};

/// Strategy: a small random weighted graph of either direction, possibly with
/// accumulated duplicate edges, isolated nodes and weak weights (the same
/// shape as the `pipeline_parity` harness).
fn random_graph() -> impl Strategy<Value = WeightedGraph> {
    (
        proptest::collection::vec(((0usize..12), (0usize..12), 0.05f64..50.0), 1..80),
        0usize..2,
    )
        .prop_map(|(edges, directed)| {
            let direction = if directed == 0 {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut graph = WeightedGraph::with_nodes(direction, 12);
            for (source, target, weight) in edges {
                if source != target {
                    graph.add_edge(source, target, weight).unwrap();
                }
            }
            graph
        })
}

fn policies() -> [ThresholdPolicy; 4] {
    [
        ThresholdPolicy::Score(0.5),
        ThresholdPolicy::TopK(7),
        ThresholdPolicy::TopShare(0.4),
        ThresholdPolicy::Coverage(0.8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All seven methods score the CSR image bit-identically to the
    /// adjacency original (Doubly Stochastic may fail when no scaling
    /// exists — then it must fail on both representations).
    #[test]
    fn csr_scores_are_bit_identical_to_adjacency(graph in random_graph()) {
        let csr = CsrGraph::from_graph(&graph).unwrap();
        for method in Method::every() {
            let reference = method.score(&graph);
            let compact = method.score(&csr);
            match (&reference, &compact) {
                (Ok(expected), Ok(got)) => prop_assert!(
                    expected == got,
                    "{method} scores differ between adjacency and CSR"
                ),
                (Err(_), Err(_)) => prop_assert!(method == Method::DoublyStochastic),
                _ => prop_assert!(
                    false,
                    "{method}: adjacency ok={}, CSR ok={}",
                    reference.is_ok(),
                    compact.is_ok()
                ),
            }
        }
    }

    /// The full pipeline keeps exactly the same edge set on either
    /// representation, for every method × threshold policy.
    #[test]
    fn csr_pipeline_edge_sets_match_adjacency(graph in random_graph()) {
        let csr = CsrGraph::from_graph(&graph).unwrap();
        for method in Method::every() {
            for policy in policies() {
                let reference = Pipeline::new(method, policy).edge_set(&graph);
                let compact = Pipeline::new(method, policy).edge_set(&csr);
                match (&reference, &compact) {
                    (Ok(expected), Ok(got)) => prop_assert!(
                        expected == got,
                        "{method} × {policy} edge set differs between adjacency and CSR"
                    ),
                    (Err(_), Err(_)) => prop_assert!(method == Method::DoublyStochastic),
                    _ => prop_assert!(
                        false,
                        "{method} × {policy}: adjacency ok={}, CSR ok={}",
                        reference.is_ok(),
                        compact.is_ok()
                    ),
                }
            }
        }
    }
}
