//! Property tests for the core scoring invariants.

use proptest::prelude::*;

use backboning::{BackboneExtractor, NoiseCorrected};
use backboning_graph::{Direction, WeightedGraph};

/// Strategy: a small random directed weighted graph, possibly with repeated
/// (accumulated) edges and zero-ish weights.
fn small_graph() -> impl Strategy<Value = WeightedGraph> {
    proptest::collection::vec(((0usize..10), (0usize..10), 0.05f64..50.0), 1..50).prop_map(
        |edges| {
            let mut graph = WeightedGraph::with_nodes(Direction::Directed, 10);
            for (source, target, weight) in edges {
                if source != target {
                    graph.add_edge(source, target, weight).unwrap();
                }
            }
            graph
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Raising the NC significance threshold δ never grows the backbone.
    #[test]
    fn raising_delta_never_grows_the_backbone(graph in small_graph()) {
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        let deltas = [-1.0, 0.0, 0.5, 1.28, 1.64, 2.32, 5.0];
        let mut previous = usize::MAX;
        for delta in deltas {
            let kept = scored.filter(delta).len();
            prop_assert!(
                kept <= previous,
                "delta {} kept {} edges, more than the looser threshold's {}",
                delta, kept, previous
            );
            previous = kept;
        }
    }

    /// `top_k` returns exactly k edges whenever the graph has at least k,
    /// and all of them whenever it has fewer.
    #[test]
    fn top_k_returns_exactly_k_when_available(graph in small_graph(), k in 0usize..60) {
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        let kept = scored.top_k(k);
        prop_assert_eq!(kept.len(), k.min(graph.edge_count()));
        // And every returned index refers to a real edge, with no duplicates.
        let unique: std::collections::HashSet<usize> = kept.iter().copied().collect();
        prop_assert_eq!(unique.len(), kept.len());
        for index in kept {
            prop_assert!(graph.edge(index).is_some());
        }
    }

    /// The δ-threshold rule and the score-ranked selection are consistent:
    /// filtering at the k-th best score keeps at least k edges.
    #[test]
    fn threshold_for_count_is_consistent_with_filter(graph in small_graph()) {
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        let k = graph.edge_count() / 2;
        if let Some(threshold) = scored.threshold_for_count(k) {
            let kept = scored.filter(threshold).len();
            prop_assert!(
                kept >= k,
                "filter({}) kept only {} of the {} requested edges",
                threshold, kept, k
            );
        }
    }
}
