//! Regression proof of the score-once-select-many contract: for every
//! method × threshold policy, scoring the graph **once** and re-selecting
//! over the borrowed [`backboning::ScoredEdges`] via
//! [`backboning::Pipeline::run_with_scores`] yields exactly the same run as
//! a fresh [`backboning::Pipeline::run`] per policy — same kept edge set,
//! byte-identical backbone and score tables, byte-identical stable summary.
//!
//! This is the contract the `backboning_server` scored-graph cache depends
//! on: a cached threshold query must be indistinguishable (except for wall
//! time) from a cold one.

use std::path::PathBuf;
use std::sync::Arc;

use backboning::{Method, Pipeline, PipelineRun, ThresholdPolicy};
use backboning_graph::io::{read_edge_list_file, EdgeListOptions};
use backboning_graph::{Direction, WeightedGraph};

fn fixture_graph() -> WeightedGraph {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/examples/trade.tsv");
    let options = EdgeListOptions::with_direction(Direction::Undirected);
    read_edge_list_file(&path, &options).expect("bundled example edge list parses")
}

/// A score threshold in each method's natural scale (same picks as the
/// golden tests) so the `Score` policy keeps a strict subset of edges.
fn score_threshold(method: Method) -> f64 {
    match method {
        Method::NaiveThreshold => 40.0,
        Method::MaximumSpanningTree => 0.5,
        Method::DoublyStochastic => 0.1,
        Method::HighSalienceSkeleton => 0.3,
        Method::HssApprox { .. } => 0.3,
        Method::DisparityFilter => 0.6,
        Method::NoiseCorrected => 1.28,
        Method::NoiseCorrectedBinomial => 0.9,
    }
}

fn policies(method: Method) -> [ThresholdPolicy; 4] {
    [
        ThresholdPolicy::Score(score_threshold(method)),
        ThresholdPolicy::TopK(10),
        ThresholdPolicy::TopShare(0.3),
        ThresholdPolicy::Coverage(0.9),
    ]
}

fn backbone_bytes(run: &PipelineRun) -> Vec<u8> {
    let mut out = Vec::new();
    run.write_backbone(&mut out).expect("write backbone");
    out
}

fn score_bytes(run: &PipelineRun) -> Vec<u8> {
    let mut out = Vec::new();
    run.write_scores(&mut out).expect("write scores");
    out
}

#[test]
fn score_once_select_many_equals_run_per_policy() {
    let graph = fixture_graph();
    // Every exact method, plus the sampled-root estimator the server caches
    // under its parameterized cache key.
    let methods = Method::every()
        .into_iter()
        .chain([Method::hss_approx_default()]);
    for method in methods {
        // One scoring pass, shared by all four policies…
        let scored = Arc::new(
            Pipeline::new(method, ThresholdPolicy::TopK(0))
                .with_threads(1)
                .score(&graph)
                .expect("scoring the fixture succeeds"),
        );
        for policy in policies(method) {
            let pipeline = Pipeline::new(method, policy).with_threads(1);
            // …versus a full re-run (re-scoring included) per policy.
            let fresh = pipeline.run(&graph).expect("fresh run succeeds");
            let cached = pipeline
                .run_with_scores(&graph, Arc::clone(&scored))
                .expect("cached run succeeds");

            let label = format!("{} × {policy}", method.cli_name());
            assert_eq!(cached.kept, fresh.kept, "{label}: kept edge set");
            assert_eq!(cached.scored, fresh.scored, "{label}: scored edges");
            assert_eq!(cached.coverage, fresh.coverage, "{label}: coverage");
            assert_eq!(
                backbone_bytes(&cached),
                backbone_bytes(&fresh),
                "{label}: backbone bytes"
            );
            assert_eq!(
                score_bytes(&cached),
                score_bytes(&fresh),
                "{label}: score table bytes"
            );
            assert_eq!(
                cached.summary_json_stable(),
                fresh.summary_json_stable(),
                "{label}: stable summary"
            );
        }
    }
}

#[test]
fn stable_summary_omits_only_the_wall_time() {
    let graph = fixture_graph();
    let run = Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::TopShare(0.3))
        .with_threads(1)
        .run(&graph)
        .unwrap();
    let full = run.summary_json();
    let stable = run.summary_json_stable();
    assert!(full.contains("\"wall_ms\":"));
    assert!(!stable.contains("\"wall_ms\":"));
    // `wall_ms` is the last field of the full summary, so the full form is
    // the stable form (minus its closing `\n}`) plus the timing line.
    let stable_prefix = &stable[..stable.len() - 2];
    assert!(full.starts_with(stable_prefix));
    assert!(full[stable_prefix.len()..].starts_with(",\n  \"wall_ms\":"));
}

#[test]
fn run_with_scores_rejects_mismatched_policies_like_run_does() {
    let graph = fixture_graph();
    let scored = Arc::new(
        Pipeline::new(Method::NaiveThreshold, ThresholdPolicy::TopK(1))
            .score(&graph)
            .unwrap(),
    );
    for policy in [
        ThresholdPolicy::TopShare(1.5),
        ThresholdPolicy::Coverage(-0.1),
    ] {
        let pipeline = Pipeline::new(Method::NaiveThreshold, policy);
        assert!(pipeline.run(&graph).is_err(), "{policy}");
        assert!(
            pipeline
                .run_with_scores(&graph, Arc::clone(&scored))
                .is_err(),
            "{policy}"
        );
    }
}

#[test]
fn run_with_scores_rejects_foreign_scores() {
    let graph = fixture_graph();
    let nc_scores = Arc::new(
        Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::TopK(1))
            .score(&graph)
            .unwrap(),
    );

    // Scores from another method must not be re-selected silently.
    let err = Pipeline::new(Method::DisparityFilter, ThresholdPolicy::TopK(5))
        .run_with_scores(&graph, Arc::clone(&nc_scores))
        .unwrap_err();
    assert!(err.to_string().contains("produced by"), "{err}");

    // Scores from another graph (different size) must be rejected, not
    // panic inside coverage selection.
    let other = WeightedGraph::from_labeled_edges(
        Direction::Undirected,
        vec![("x", "y", 1.0), ("y", "z", 2.0)],
    )
    .unwrap();
    let err = Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::Coverage(0.9))
        .run_with_scores(&other, nc_scores)
        .unwrap_err();
    assert!(err.to_string().contains("nodes"), "{err}");
}
