//! Regression tests for degenerate inputs: isolated nodes, zero-weight edges,
//! self-loops, and single-edge graphs must never panic in any extractor.

use backboning::{
    BackboneExtractor, DisparityFilter, DoublyStochastic, HighSalienceSkeleton,
    MaximumSpanningTree, NaiveThreshold, NoiseCorrected, NoiseCorrectedBinomial,
};
use backboning_graph::{CsrGraph, Direction, WeightedGraph};

fn extractors() -> Vec<Box<dyn BackboneExtractor>> {
    vec![
        Box::new(NoiseCorrected::default()),
        Box::new(NoiseCorrected::without_prior()),
        Box::new(NoiseCorrectedBinomial::new()),
        Box::new(DisparityFilter::new()),
        Box::new(NaiveThreshold::new()),
        Box::new(HighSalienceSkeleton::new()),
        Box::new(DoublyStochastic::new()),
        Box::new(MaximumSpanningTree::new()),
    ]
}

/// Graphs that have historically been good at shaking out panics.
fn degenerate_graphs() -> Vec<(&'static str, WeightedGraph)> {
    let mut cases = Vec::new();

    for direction in [Direction::Directed, Direction::Undirected] {
        let tag = match direction {
            Direction::Directed => "directed",
            Direction::Undirected => "undirected",
        };

        cases.push(("empty", WeightedGraph::with_nodes(direction, 0)));

        // Nodes but no edges at all.
        cases.push(("edgeless", WeightedGraph::with_nodes(direction, 5)));

        // A single edge, with trailing isolated nodes.
        let mut single = WeightedGraph::with_nodes(direction, 4);
        single.add_edge(0, 1, 5.0).unwrap();
        cases.push((
            if tag == "directed" {
                "single_directed"
            } else {
                "single_undirected"
            },
            single,
        ));

        // Zero-weight edges mixed with positive ones.
        let mut zero = WeightedGraph::with_nodes(direction, 4);
        zero.add_edge(0, 1, 0.0).unwrap();
        zero.add_edge(1, 2, 3.0).unwrap();
        zero.add_edge(2, 3, 0.0).unwrap();
        cases.push(("zero_weight", zero));

        // Every edge has zero weight: totals and strengths all vanish.
        let mut all_zero = WeightedGraph::with_nodes(direction, 3);
        all_zero.add_edge(0, 1, 0.0).unwrap();
        all_zero.add_edge(1, 2, 0.0).unwrap();
        cases.push(("all_zero", all_zero));
    }

    cases
}

#[test]
fn csr_from_graph_handles_degenerate_inputs() {
    for (name, graph) in degenerate_graphs() {
        let csr = CsrGraph::from_graph(&graph).unwrap();
        assert_eq!(csr.node_count(), graph.node_count(), "{name}: node count");
        // Every row must be addressable, including trailing isolated nodes.
        let mut entries = 0usize;
        for node in 0..csr.node_count() {
            assert_eq!(
                csr.neighbors(node).len(),
                csr.out_degree(node),
                "{name}: row {node}"
            );
            assert_eq!(
                csr.weights(node).len(),
                csr.out_degree(node),
                "{name}: row {node}"
            );
            assert_eq!(
                csr.degree(node),
                graph.degree(node),
                "{name}: degree {node}"
            );
            entries += csr.out_degree(node);
        }
        assert_eq!(entries, csr.entry_count(), "{name}: total entries");
        assert_eq!(csr.entries().count(), csr.entry_count(), "{name}: iterator");
    }
}

#[test]
fn every_extractor_scores_degenerate_graphs_without_panicking() {
    for (name, graph) in degenerate_graphs() {
        for extractor in extractors() {
            let scored = match extractor.score(&graph) {
                Ok(scored) => scored,
                // A clean error is acceptable for a degenerate input; a panic
                // is not (and would fail this test by unwinding).
                Err(_) => continue,
            };
            assert_eq!(
                scored.len(),
                graph.edge_count(),
                "{}/{name}: every edge must be scored exactly once",
                extractor.name()
            );
            for edge in scored.iter() {
                assert!(
                    !edge.score.is_nan(),
                    "{}/{name}: NaN score on edge {} ({} -> {}, w={})",
                    extractor.name(),
                    edge.edge_index,
                    edge.source,
                    edge.target,
                    edge.weight
                );
            }
            // Selection helpers must tolerate k larger than the edge count.
            let all = scored.top_k(graph.edge_count() + 10);
            assert!(
                all.len() <= graph.edge_count(),
                "{}/{name}",
                extractor.name()
            );
            let none = scored.top_k(0);
            assert!(none.is_empty(), "{}/{name}", extractor.name());
        }
    }
}

#[test]
fn nc_scores_zero_weight_edges_with_positive_variance() {
    // The zero-weight edge's endpoints both have positive strength, so the
    // Bayesian prior has something to work with and must keep the posterior
    // variance strictly positive (the paper's motivation for the prior).
    let mut graph = WeightedGraph::with_nodes(Direction::Directed, 4);
    graph.add_edge(0, 1, 10.0).unwrap();
    graph.add_edge(1, 2, 7.0).unwrap();
    graph.add_edge(2, 1, 4.0).unwrap();
    graph.add_edge(1, 0, 3.0).unwrap();
    let zero_index = graph.add_edge(2, 0, 0.0).unwrap();

    let scored = NoiseCorrected::default().score(&graph).unwrap();
    let zero_edge = scored.get(zero_index).unwrap();
    assert!(zero_edge.score.is_finite());
    assert!(
        zero_edge.std_dev.unwrap() > 0.0,
        "Bayesian prior must keep the variance of a zero-weight edge positive"
    );
}

#[test]
fn nc_gives_zero_score_to_edges_from_zero_strength_nodes() {
    // When the source node's entire out-strength is zero the lift is
    // undefined (kappa would divide by zero); the scorer must degrade to a
    // zero score instead of panicking or emitting NaN/inf.
    let mut graph = WeightedGraph::with_nodes(Direction::Directed, 3);
    graph.add_edge(0, 1, 10.0).unwrap();
    let dead_index = graph.add_edge(2, 0, 0.0).unwrap();

    let scored = NoiseCorrected::default().score(&graph).unwrap();
    let dead_edge = scored.get(dead_index).unwrap();
    assert_eq!(dead_edge.score, 0.0);
    assert!(!dead_edge.score.is_nan());
}

#[test]
fn single_edge_graph_survives_the_whole_pipeline() {
    for direction in [Direction::Directed, Direction::Undirected] {
        let mut graph = WeightedGraph::with_nodes(direction, 2);
        graph.add_edge(0, 1, 5.0).unwrap();

        let scored = NoiseCorrected::default().score(&graph).unwrap();
        assert_eq!(scored.len(), 1);
        let edge = scored.iter().next().unwrap();
        assert!(!edge.score.is_nan());

        let backbone = scored.backbone_top_k(&graph, 1).unwrap();
        assert_eq!(backbone.edge_count(), 1);
        assert_eq!(backbone.node_count(), 2);
    }
}
