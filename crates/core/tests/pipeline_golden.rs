//! Golden-file round-trip tests for the [`backboning::Pipeline`]: the bundled
//! example edge list (`docs/examples/trade.tsv`) goes in, and for **every**
//! method × threshold-policy combination the resulting backbone edge list
//! must match the committed golden file byte for byte, and parse back into
//! the same graph.
//!
//! The golden files live in `crates/core/tests/golden/`. To regenerate them
//! after an intentional behaviour change:
//!
//! ```sh
//! BACKBONING_REGEN_GOLDEN=1 cargo test -p backboning --test pipeline_golden
//! ```

use std::path::PathBuf;

use backboning::{Method, Pipeline, ThresholdPolicy};
use backboning_graph::io::{read_edge_list_file, read_edge_list_str, EdgeListOptions};
use backboning_graph::{Direction, WeightedGraph};

fn fixture_graph() -> WeightedGraph {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/examples/trade.tsv");
    let options = EdgeListOptions::with_direction(Direction::Undirected);
    read_edge_list_file(&path, &options).expect("bundled example edge list parses")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A score threshold in each method's natural scale, chosen to keep a strict
/// subset of the fixture's 28 edges.
fn score_threshold(method: Method) -> f64 {
    match method {
        Method::NaiveThreshold => 40.0,
        Method::MaximumSpanningTree => 0.5,
        Method::DoublyStochastic => 0.1,
        Method::HighSalienceSkeleton => 0.3,
        Method::HssApprox { .. } => 0.3,
        Method::DisparityFilter => 0.6,
        Method::NoiseCorrected => 1.28,
        Method::NoiseCorrectedBinomial => 0.9,
    }
}

fn policies(method: Method) -> [ThresholdPolicy; 4] {
    [
        ThresholdPolicy::Score(score_threshold(method)),
        ThresholdPolicy::TopK(10),
        ThresholdPolicy::TopShare(0.3),
        ThresholdPolicy::Coverage(0.9),
    ]
}

#[test]
fn every_method_and_policy_matches_its_golden_backbone() {
    let graph = fixture_graph();
    assert_eq!(graph.node_count(), 8);
    assert_eq!(graph.edge_count(), 28);
    let regenerate = std::env::var("BACKBONING_REGEN_GOLDEN").is_ok();
    let dir = golden_dir();
    if regenerate {
        std::fs::create_dir_all(&dir).unwrap();
    }

    for method in Method::every() {
        for policy in policies(method) {
            let run = Pipeline::new(method, policy)
                .run(&graph)
                .unwrap_or_else(|e| panic!("{method} × {policy} failed: {e}"));
            let mut bytes = Vec::new();
            run.write_backbone(&mut bytes).unwrap();
            let produced = String::from_utf8(bytes).unwrap();

            let golden_path = dir.join(format!("{}_{}.tsv", method.cli_name(), policy.kind()));
            if regenerate {
                std::fs::write(&golden_path, &produced).unwrap();
                continue;
            }
            let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
                panic!(
                    "missing golden file {} (regenerate with BACKBONING_REGEN_GOLDEN=1): {e}",
                    golden_path.display()
                )
            });
            assert_eq!(
                produced,
                golden,
                "{method} × {policy}: backbone drifted from {}",
                golden_path.display()
            );

            // Round-trip: the emitted edge list parses back into exactly the
            // backbone's edges and weights.
            let options = EdgeListOptions::with_direction(Direction::Undirected);
            let restored = read_edge_list_str(&produced, &options).unwrap();
            assert_eq!(restored.edge_count(), run.backbone.edge_count());
            for edge in run.backbone.edges() {
                let source = run.backbone.label(edge.source).unwrap();
                let target = run.backbone.label(edge.target).unwrap();
                let restored_source = restored.node_by_label(source).unwrap();
                let restored_target = restored.node_by_label(target).unwrap();
                assert_eq!(
                    restored.edge_weight(restored_source, restored_target),
                    Some(edge.weight),
                    "{method} × {policy}: weight of {source}–{target} drifted"
                );
            }
        }
    }
}

#[test]
fn golden_policies_have_the_advertised_sizes() {
    let graph = fixture_graph();
    for method in Method::every() {
        // Size-targeting policies: parameter-free methods keep their fixed
        // backbone, scored methods honour the requested size.
        let top_k = Pipeline::new(method, ThresholdPolicy::TopK(10))
            .edge_set(&graph)
            .unwrap();
        let top_share = Pipeline::new(method, ThresholdPolicy::TopShare(0.3))
            .edge_set(&graph)
            .unwrap();
        if !method.is_parameter_free() {
            assert_eq!(top_k.len(), 10, "{method}");
            // 0.3 × 28 rounds to 8.
            assert_eq!(top_share.len(), 8, "{method}");
        }
        // Coverage 0.9 of 8 nodes needs at least 8 covered (ceil(7.2)).
        let coverage_run = Pipeline::new(method, ThresholdPolicy::Coverage(0.9))
            .run(&graph)
            .unwrap();
        assert!(
            coverage_run.coverage >= 0.9 - 1e-12,
            "{method}: coverage {}",
            coverage_run.coverage
        );
    }
}
