//! Parity tests for the parallel scoring engine.
//!
//! The contract of `backboning_parallel` and the CSR hot paths is that
//! parallelism and data layout change *nothing* about the output: every
//! extractor must produce bit-identical `ScoredEdges` at 1, 2 and N worker
//! threads, and the CSR Dijkstra must produce the exact tree of the
//! adjacency-list Dijkstra. These properties are what lets the evaluation
//! pipeline switch freely between the sequential and parallel paths.

use proptest::prelude::*;

use backboning::{
    BackboneExtractor, DisparityFilter, DoublyStochastic, HighSalienceSkeleton, NoiseCorrected,
    NoiseCorrectedBinomial,
};
use backboning_graph::algorithms::shortest_path::{
    csr_dijkstra, csr_entry_distances, dijkstra, CsrDijkstra, DistanceTransform, SsspEngine,
};
use backboning_graph::{CsrGraph, Direction, WeightedGraph};

/// Strategy: a small random weighted graph of either direction, possibly with
/// accumulated duplicate edges, isolated nodes and weak weights.
fn random_graph() -> impl Strategy<Value = WeightedGraph> {
    (
        proptest::collection::vec(((0usize..12), (0usize..12), 0.05f64..50.0), 1..80),
        0usize..2,
    )
        .prop_map(|(edges, directed)| {
            let direction = if directed == 0 {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut graph = WeightedGraph::with_nodes(direction, 12);
            for (source, target, weight) in edges {
                if source != target {
                    graph.add_edge(source, target, weight).unwrap();
                }
            }
            graph
        })
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HSS salience is identical at every thread count, and identical to the
    /// seed adjacency-list implementation.
    #[test]
    fn hss_is_thread_count_invariant_and_matches_seed_path(graph in random_graph()) {
        let hss = HighSalienceSkeleton::new();
        let reference = hss.score_adjacency_reference(&graph).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = hss.score_with_threads(&graph, threads).unwrap();
            prop_assert_eq!(&parallel, &reference);
        }
    }

    /// NC scores (including raw lifts and standard deviations) are identical
    /// at every thread count.
    #[test]
    fn noise_corrected_is_thread_count_invariant(graph in random_graph()) {
        let nc = NoiseCorrected::default();
        let reference = nc.score_with_threads(&graph, 1).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = nc.score_with_threads(&graph, threads).unwrap();
            prop_assert_eq!(&parallel, &reference);
        }
        // The trait entry point agrees with the explicit-thread path.
        prop_assert_eq!(&nc.score(&graph).unwrap(), &reference);
    }

    /// Disparity Filter p-values are identical at every thread count.
    #[test]
    fn disparity_is_thread_count_invariant(graph in random_graph()) {
        let df = DisparityFilter::new();
        let reference = df.score_with_threads(&graph, 1).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = df.score_with_threads(&graph, threads).unwrap();
            prop_assert_eq!(&parallel, &reference);
        }
    }

    /// The binomial NC variant is identical at every thread count.
    #[test]
    fn noise_corrected_binomial_is_thread_count_invariant(graph in random_graph()) {
        let ncb = NoiseCorrectedBinomial::new();
        let reference = ncb.score_with_threads(&graph, 1).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = ncb.score_with_threads(&graph, threads).unwrap();
            prop_assert_eq!(&parallel, &reference);
        }
    }

    /// CSR Dijkstra produces the exact tree (distances *and* predecessors) of
    /// the adjacency-list Dijkstra from every root, under every transform.
    #[test]
    fn csr_dijkstra_matches_adjacency_dijkstra(graph in random_graph()) {
        let csr = CsrGraph::from_graph(&graph).unwrap();
        for transform in [
            DistanceTransform::Inverse,
            DistanceTransform::NegativeLog,
            DistanceTransform::Identity,
        ] {
            for source in graph.nodes() {
                let adjacency = dijkstra(&graph, source, transform).unwrap();
                let csr_tree = csr_dijkstra(&csr, source, transform).unwrap();
                prop_assert_eq!(&adjacency, &csr_tree);
            }
        }
    }

    /// Doubly-Stochastic scores are identical at every thread count whenever
    /// the scaling exists.
    #[test]
    fn doubly_stochastic_is_thread_count_invariant(graph in random_graph()) {
        let ds = DoublyStochastic::new();
        if let Ok(reference) = ds.score_with_threads(&graph, 1) {
            for threads in THREAD_COUNTS {
                let parallel = ds.score_with_threads(&graph, threads).unwrap();
                prop_assert_eq!(&parallel, &reference);
            }
        }
    }

    /// Sampled-root HSS with K = |V| roots (every node sampled) is
    /// bit-identical to the exact skeleton, for any seed.
    #[test]
    fn hss_approx_with_all_roots_matches_exact(graph in random_graph(), seed in 0u64..u64::MAX) {
        let hss = HighSalienceSkeleton::new();
        let exact = hss.score_with_threads(&graph, 1).unwrap();
        let sampled = hss
            .score_sampled_with_threads(&graph, graph.node_count(), seed, 1)
            .unwrap();
        prop_assert_eq!(sampled.len(), exact.len());
        // The extractor names differ on purpose; the scores must not.
        for (a, b) in exact.iter().zip(sampled.iter()) {
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    /// A fixed `(roots, seed)` sample estimates bit-identically at 1/2/3/8
    /// worker threads.
    #[test]
    fn hss_approx_is_thread_count_invariant(
        graph in random_graph(),
        roots in 1usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let hss = HighSalienceSkeleton::new();
        let reference = hss.score_sampled_with_threads(&graph, roots, seed, 1).unwrap();
        for threads in [2, 3, 8] {
            let parallel = hss
                .score_sampled_with_threads(&graph, roots, seed, threads)
                .unwrap();
            prop_assert_eq!(&parallel, &reference);
        }
    }

    /// The frontier-bucketed SSSP engine reproduces the binary-heap engine's
    /// exact tree (reached set, distance bits, parents) from every root,
    /// under every distance transform.
    #[test]
    fn bucketed_sssp_matches_heap_sssp(graph in random_graph()) {
        let csr = CsrGraph::from_graph(&graph).unwrap();
        for transform in [
            DistanceTransform::Inverse,
            DistanceTransform::NegativeLog,
            DistanceTransform::Identity,
        ] {
            let entry_distances = csr_entry_distances(&csr, transform);
            let mut heap = CsrDijkstra::with_engine(csr.node_count(), SsspEngine::BinaryHeap);
            let mut bucketed = CsrDijkstra::with_engine(csr.node_count(), SsspEngine::Bucketed);
            for source in graph.nodes() {
                heap.run(&csr, &entry_distances, source);
                bucketed.run(&csr, &entry_distances, source);
                prop_assert_eq!(heap.reached(), bucketed.reached());
                for node in graph.nodes() {
                    prop_assert_eq!(
                        heap.distance(node).to_bits(),
                        bucketed.distance(node).to_bits()
                    );
                    prop_assert_eq!(heap.parent(node), bucketed.parent(node));
                    prop_assert_eq!(heap.parent_entry(node), bucketed.parent_entry(node));
                }
            }
        }
    }
}

/// The HSS engine handles degenerate inputs identically to the seed path.
#[test]
fn hss_parity_on_degenerate_graphs() {
    let hss = HighSalienceSkeleton::new();
    let empty = WeightedGraph::undirected();
    assert_eq!(
        hss.score_with_threads(&empty, 4).unwrap(),
        hss.score_adjacency_reference(&empty).unwrap()
    );

    let mut isolated = WeightedGraph::with_nodes(Direction::Undirected, 5);
    isolated.add_edge(0, 1, 2.0).unwrap();
    assert_eq!(
        hss.score_with_threads(&isolated, 4).unwrap(),
        hss.score_adjacency_reference(&isolated).unwrap()
    );

    // Zero-weight edges are unreachable under the inverse transform.
    let mut zero = WeightedGraph::with_nodes(Direction::Directed, 3);
    zero.add_edge(0, 1, 0.0).unwrap();
    zero.add_edge(1, 2, 3.0).unwrap();
    assert_eq!(
        hss.score_with_threads(&zero, 4).unwrap(),
        hss.score_adjacency_reference(&zero).unwrap()
    );
}

/// Unit-weight graphs take the uniform-distance (BFS) fast path inside the
/// CSR engine; the salience must still match the seed heap-based path.
#[test]
fn hss_parity_on_unit_weight_graphs() {
    // A Barabási–Albert-like unit-weight topology: hubs, cycles, leaves.
    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, 30);
    for i in 1..30usize {
        graph.add_edge(i, i / 2, 1.0).unwrap();
        graph.add_edge(i, (i * 7 + 3) % 30, 1.0).unwrap();
    }
    let hss = HighSalienceSkeleton::new();
    let reference = hss.score_adjacency_reference(&graph).unwrap();
    for threads in THREAD_COUNTS {
        assert_eq!(hss.score_with_threads(&graph, threads).unwrap(), reference);
    }

    // Sampling every node rides the same batched-BFS path and must agree
    // with the seed path score for score, at any thread count.
    for threads in [1, 2, 3, 8] {
        let sampled = hss
            .score_sampled_with_threads(&graph, graph.node_count(), 4242, threads)
            .unwrap();
        for (a, b) in reference.iter().zip(sampled.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}

/// More workers than roots degrade gracefully to one root per worker.
#[test]
fn hss_with_more_threads_than_nodes() {
    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, 3);
    graph.add_edge(0, 1, 1.0).unwrap();
    graph.add_edge(1, 2, 2.0).unwrap();
    let hss = HighSalienceSkeleton::new();
    assert_eq!(
        hss.score_with_threads(&graph, 64).unwrap(),
        hss.score_adjacency_reference(&graph).unwrap()
    );
}
