//! The High Salience Skeleton (Grady, Thiemann & Brockmann, 2012).
//!
//! The HSS is the structural state of the art the paper compares against. For
//! every node `v` the shortest-path tree `SPT(v)` rooted at `v` is computed
//! (on a distance transform of the proximity-like edge weights); the
//! *salience* of an edge is the fraction of shortest-path trees that contain
//! it:
//!
//! ```text
//! salience(e) = |{v : e ∈ SPT(v)}| / |V|
//! ```
//!
//! Empirically salience is strongly bimodal — most edges appear in almost no
//! tree or in almost every tree — so the skeleton is read off by keeping edges
//! with salience close to one. The HSS never models noise in the edge weights,
//! which is the paper's core criticism of it.
//!
//! The computation costs one Dijkstra run per node (`O(|V| (|E| + |V|) log |V|)`),
//! which is why the paper could not run HSS on its larger networks. This
//! implementation breaks that wall in two ways, without changing a single
//! output bit (pinned by `tests/parallel_parity.rs`):
//!
//! * **CSR hot path** — every root's Dijkstra runs over an immutable
//!   [`CsrGraph`](backboning_graph::CsrGraph) with a reusable scratch workspace
//!   ([`CsrDijkstra`]),
//!   distance transforms precomputed once per edge, and tree-edge counts
//!   accumulated directly by CSR edge id — no per-root allocations and no
//!   `HashMap` lookups per tree edge.
//! * **Parallel roots** — the per-root loop fans out across worker threads
//!   (see `backboning_parallel`; override with `BACKBONING_THREADS`), each
//!   worker accumulating integer salience counters that are merged exactly at
//!   the end, so the result is independent of the thread count.
//!
//! The seed adjacency-list implementation is kept as
//! [`HighSalienceSkeleton::score_adjacency_reference`] — it is the baseline
//! the parity tests compare against and the `bench_snapshot` perf trajectory
//! measures speedups over.

use backboning_graph::algorithms::shortest_path::{
    csr_entry_distances, dijkstra, CsrDijkstra, DistanceTransform,
};
use backboning_graph::{GraphView, WeightedGraph};
use backboning_parallel::{clamped_threads, par_accumulate};

use crate::error::BackboneResult;
use crate::scored::{BackboneExtractor, ScoredEdge, ScoredEdges};

/// The High Salience Skeleton backbone extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighSalienceSkeleton {
    /// How proximity weights are converted to distances for the shortest-path
    /// trees. The original HSS uses the inverse transform; the negative-log
    /// alternative is exposed for the ablation benchmarks.
    pub transform: DistanceTransform,
}

impl Default for HighSalienceSkeleton {
    fn default() -> Self {
        HighSalienceSkeleton {
            transform: DistanceTransform::Inverse,
        }
    }
}

impl HighSalienceSkeleton {
    /// Create the extractor with the canonical inverse-weight distance transform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the extractor with a custom distance transform.
    pub fn with_transform(transform: DistanceTransform) -> Self {
        HighSalienceSkeleton { transform }
    }

    /// Score every edge using the parallel CSR engine with an explicit worker
    /// count (`0` means "decide automatically", honoring `BACKBONING_THREADS`).
    ///
    /// The salience of every edge is identical for every `threads` value: each
    /// worker accumulates integer tree-membership counters over a disjoint
    /// range of roots, and integer merges are exact.
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        let node_count = graph.node_count();
        let edge_count = graph.edge_count();
        // Borrowed when the input already is compact; built once otherwise.
        let csr = graph.to_csr()?;
        let entry_distances = csr_entry_distances(&csr, self.transform);
        // One Dijkstra per item is expensive; a handful of roots per worker
        // already amortises the spawn cost.
        let threads = clamped_threads(threads, node_count, 8);

        let (_, tree_membership) = par_accumulate(
            node_count,
            threads,
            || (CsrDijkstra::new(node_count), vec![0usize; edge_count]),
            |(scratch, counts), root| {
                scratch.run(&csr, &entry_distances, root);
                for &node in scratch.reached() {
                    if let Some(entry) = scratch.parent_entry(node) {
                        counts[csr.entry_edge_id(entry)] += 1;
                    }
                }
            },
            |(_, counts), (_, partial)| {
                for (count, other) in counts.iter_mut().zip(partial) {
                    *count += other;
                }
            },
        );

        Ok(self.scored_from_membership(graph, &tree_membership))
    }

    /// The seed adjacency-list implementation: one full Dijkstra (with fresh
    /// allocations) per root and a hash lookup per tree edge, single-threaded.
    ///
    /// Kept as the reference the parity tests compare the CSR engine against,
    /// and as the baseline the `bench_snapshot` perf trajectory measures
    /// speedups over.
    pub fn score_adjacency_reference(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        let mut tree_membership = vec![0usize; graph.edge_count()];
        for root in graph.nodes() {
            let tree = dijkstra(graph, root, self.transform)?;
            for (parent, child) in tree.tree_edges() {
                // Map the tree edge back to the stored edge. For directed
                // graphs tree edges follow edge direction by construction; for
                // undirected graphs edge_index resolves either orientation.
                if let Some(edge_index) = graph.edge_index(parent, child) {
                    tree_membership[edge_index] += 1;
                }
            }
        }
        Ok(self.scored_from_membership(graph, &tree_membership))
    }

    /// Turn per-edge tree-membership counts into salience scores.
    fn scored_from_membership<G: GraphView>(
        &self,
        graph: &G,
        tree_membership: &[usize],
    ) -> ScoredEdges {
        let node_count = graph.node_count();
        let mut scored = Vec::with_capacity(graph.edge_count());
        for edge in graph.edges() {
            let salience = if node_count > 0 {
                tree_membership[edge.index] as f64 / node_count as f64
            } else {
                0.0
            };
            scored.push(ScoredEdge {
                edge_index: edge.index,
                source: edge.source,
                target: edge.target,
                weight: edge.weight,
                score: salience,
                raw_score: None,
                std_dev: None,
                p_value: None,
            });
        }
        ScoredEdges::new(BackboneExtractor::name(self), node_count, scored)
    }
}

impl BackboneExtractor for HighSalienceSkeleton {
    fn name(&self) -> &'static str {
        "high_salience_skeleton"
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, GraphBuilder, WeightedGraph};

    #[test]
    fn salience_is_a_fraction() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(2, 3, 10.0)
            .indexed_edge(0, 3, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!((0.0..=1.0).contains(&edge.score));
        }
    }

    #[test]
    fn path_graph_edges_have_full_salience() {
        // On a path every edge lies on every shortest-path tree.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 2.0)
            .indexed_edge(1, 2, 3.0)
            .indexed_edge(2, 3, 4.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!((edge.score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weak_shortcut_has_low_salience() {
        // A strong path 0-1-2 and a weak direct edge 0-2: with inverse-weight
        // distances the detour is shorter, so the weak shortcut joins no tree.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(0, 2, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        let shortcut = scored.get(graph.edge_index(0, 2).unwrap()).unwrap();
        let trunk = scored.get(graph.edge_index(0, 1).unwrap()).unwrap();
        assert_eq!(shortcut.score, 0.0);
        assert!((trunk.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_hub_edges_are_fully_salient() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(0, 3, 1.0)
            .indexed_edge(0, 4, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!((edge.score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn salience_is_bimodal_on_two_communities() {
        // Two tight triangles joined by a single bridge: the bridge must appear
        // in every tree, intra-triangle edges only in some.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(0, 2, 10.0)
            .indexed_edge(3, 4, 10.0)
            .indexed_edge(4, 5, 10.0)
            .indexed_edge(3, 5, 10.0)
            .indexed_edge(2, 3, 5.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        let bridge = scored.get(graph.edge_index(2, 3).unwrap()).unwrap();
        assert!((bridge.score - 1.0).abs() < 1e-12);
        // Every intra-triangle edge has strictly smaller salience than the bridge.
        for edge in scored.iter() {
            if edge.edge_index != bridge.edge_index {
                assert!(edge.score < 1.0);
            }
        }
    }

    #[test]
    fn directed_graphs_are_supported() {
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 3);
        graph.add_edge(0, 1, 5.0).unwrap();
        graph.add_edge(1, 2, 5.0).unwrap();
        graph.add_edge(2, 0, 5.0).unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        // Each edge lies on the unique directed path from two of the three roots.
        for edge in scored.iter() {
            assert!(edge.score > 0.0);
            assert!(edge.score <= 1.0);
        }
    }

    #[test]
    fn transform_variants_give_same_ranking_on_simple_graph() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(0, 2, 1.0)
            .build()
            .unwrap();
        let inverse = HighSalienceSkeleton::new().score(&graph).unwrap();
        let neg_log = HighSalienceSkeleton::with_transform(DistanceTransform::NegativeLog)
            .score(&graph)
            .unwrap();
        let shortcut = graph.edge_index(0, 2).unwrap();
        assert_eq!(
            inverse.get(shortcut).unwrap().score,
            neg_log.get(shortcut).unwrap().score
        );
    }

    #[test]
    fn empty_graph_is_handled() {
        let empty = WeightedGraph::undirected();
        let scored = HighSalienceSkeleton::new().score(&empty).unwrap();
        assert!(scored.is_empty());
    }

    #[test]
    fn disconnected_components_are_scored_independently() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(2, 3, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        // Each edge appears in the trees of its own component's two nodes only.
        for edge in scored.iter() {
            assert!((edge.score - 0.5).abs() < 1e-12);
        }
    }
}
