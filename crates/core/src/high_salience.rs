//! The High Salience Skeleton (Grady, Thiemann & Brockmann, 2012).
//!
//! The HSS is the structural state of the art the paper compares against. For
//! every node `v` the shortest-path tree `SPT(v)` rooted at `v` is computed
//! (on a distance transform of the proximity-like edge weights); the
//! *salience* of an edge is the fraction of shortest-path trees that contain
//! it:
//!
//! ```text
//! salience(e) = |{v : e ∈ SPT(v)}| / |V|
//! ```
//!
//! Empirically salience is strongly bimodal — most edges appear in almost no
//! tree or in almost every tree — so the skeleton is read off by keeping edges
//! with salience close to one. The HSS never models noise in the edge weights,
//! which is the paper's core criticism of it.
//!
//! The computation costs one Dijkstra run per node (`O(|V| (|E| + |V|) log |V|)`),
//! which is why the paper could not run HSS on its larger networks. This
//! implementation breaks that wall in three ways, the first two without
//! changing a single output bit (pinned by `tests/parallel_parity.rs`):
//!
//! * **CSR hot path** — every root's shortest-path tree grows over an
//!   immutable [`CsrGraph`] with reusable scratch
//!   workspaces, distance transforms precomputed once per edge, and tree-edge
//!   counts accumulated directly by CSR edge id. Uniform-weight graphs take a
//!   64-root batched BFS ([`UniformBfsBatch`]) that settles 64 trees per edge
//!   sweep; weighted graphs take the per-root [`CsrDijkstra`], whose
//!   frontier-bucketed queue replaces the heap's `O(log n)` sifts with `O(1)`
//!   bucket pushes (both engines reproduce the exact heap pop order).
//! * **Parallel roots** — the root loop fans out across worker threads
//!   (see `backboning_parallel`; override with `BACKBONING_THREADS`), each
//!   worker accumulating integer salience counters that are merged exactly at
//!   the end, so the result is independent of the thread count.
//! * **Sampled roots** — [`HighSalienceSkeleton::score_sampled_with_threads`]
//!   estimates salience from `K` deterministically seeded roots instead of
//!   all `|V|`. The estimate is unbiased, and Hoeffding's inequality bounds
//!   the per-edge error: `P(|ŝ(e) − s(e)| ≥ ε) ≤ 2·exp(−2Kε²)` (see
//!   [`salience_error_bound`]). With `K = |V|` the sample is every node and
//!   the output is bit-identical to the exact skeleton.
//!
//! The seed adjacency-list implementation is kept as
//! [`HighSalienceSkeleton::score_adjacency_reference`] — it is the baseline
//! the parity tests compare against and the `bench_snapshot` perf trajectory
//! measures speedups over.

use backboning_graph::algorithms::shortest_path::{
    csr_entry_distances, dijkstra, CsrDijkstra, DistanceTransform, EntryDistances, UniformBfsBatch,
    UNIFORM_BFS_LANES,
};
use backboning_graph::{CsrGraph, GraphView, NodeId, WeightedGraph};
use backboning_parallel::{clamped_threads, par_accumulate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{BackboneError, BackboneResult};
use crate::scored::{BackboneExtractor, ScoredEdge, ScoredEdges};

/// Extractor name stamped on sampled-root salience scores (distinct from the
/// exact skeleton's, so cached exact scores are never mistaken for estimates).
pub const HSS_APPROX_SCORE_NAME: &str = "high_salience_skeleton_approx";

/// Deterministically sample `k` distinct root nodes, sorted ascending, via a
/// seeded partial Fisher–Yates shuffle. `k ≥ node_count` selects every node
/// (making the sampled estimator coincide with the exact skeleton).
pub fn sample_roots(node_count: usize, k: usize, seed: u64) -> Vec<NodeId> {
    if k >= node_count {
        return (0..node_count).collect();
    }
    let mut indices: Vec<u32> = (0..node_count as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..k {
        let j = rng.random_range(i..node_count);
        indices.swap(i, j);
    }
    let mut roots: Vec<NodeId> = indices[..k].iter().map(|&node| node as NodeId).collect();
    roots.sort_unstable();
    roots
}

/// Hoeffding bound on a **single edge's** salience estimation error.
///
/// Each of the `roots` sampled trees contributes an indicator in `{0, 1}` for
/// the edge, so by Hoeffding's inequality the estimate `ŝ = count / K`
/// satisfies `P(|ŝ − s| ≥ ε) ≤ 2·exp(−2Kε²)`; solving for the error at the
/// requested confidence gives `ε = sqrt(ln(2 / (1 − confidence)) / (2K))`.
/// Roots are drawn without replacement, which concentrates at least as fast
/// as the independent case the bound assumes (Hoeffding 1963, Theorem 4).
pub fn salience_error_bound(roots: usize, confidence: f64) -> f64 {
    assert!(roots > 0, "error bound requires at least one sampled root");
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must be in [0, 1)"
    );
    ((2.0 / (1.0 - confidence)).ln() / (2.0 * roots as f64)).sqrt()
}

/// Union (Bonferroni) bound over **every edge at once**: with probability at
/// least `confidence`, no edge's salience estimate errs by more than the
/// returned `ε = sqrt(ln(2·|E| / (1 − confidence)) / (2K))`. This is the
/// bound to compare a measured max per-edge deviation against.
pub fn max_salience_error_bound(roots: usize, edge_count: usize, confidence: f64) -> f64 {
    assert!(roots > 0, "error bound requires at least one sampled root");
    assert!(edge_count > 0, "error bound requires at least one edge");
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must be in [0, 1)"
    );
    ((2.0 * edge_count as f64 / (1.0 - confidence)).ln() / (2.0 * roots as f64)).sqrt()
}

/// Accumulate per-edge shortest-path-tree membership counts over `roots`.
///
/// Uniform-weight graphs batch [`UNIFORM_BFS_LANES`] roots per bit-parallel
/// BFS sweep; weighted graphs run one bucketed Dijkstra per root. Both
/// engines grow the same deterministic trees (strict-relaxation,
/// lowest-entry-id parents), and both fan out over `threads` workers whose
/// integer counters merge in worker order, so the counts are independent of
/// the thread count and of which engine ran.
fn tree_membership_counts(
    csr: &CsrGraph,
    entry_distances: &EntryDistances,
    roots: &[NodeId],
    threads: usize,
    edge_count: usize,
) -> Vec<usize> {
    let node_count = csr.node_count();
    if entry_distances.uniform().is_some() {
        let batches = roots.len().div_ceil(UNIFORM_BFS_LANES);
        // Each batch already sweeps up to 64 trees, so one batch per worker
        // is plenty of work.
        let threads = clamped_threads(threads, batches, 1);
        let (_, counts) = par_accumulate(
            batches,
            threads,
            || (UniformBfsBatch::new(node_count), vec![0usize; edge_count]),
            |(scratch, counts), batch| {
                let start = batch * UNIFORM_BFS_LANES;
                let end = roots.len().min(start + UNIFORM_BFS_LANES);
                scratch.run(csr, entry_distances, &roots[start..end], |entry, lanes| {
                    counts[csr.entry_edge_id(entry)] += lanes as usize;
                });
            },
            |(_, counts), (_, partial)| {
                for (count, other) in counts.iter_mut().zip(partial) {
                    *count += other;
                }
            },
        );
        counts
    } else {
        // One Dijkstra per item is expensive; a handful of roots per worker
        // already amortises the spawn cost.
        let threads = clamped_threads(threads, roots.len(), 8);
        let (_, counts) = par_accumulate(
            roots.len(),
            threads,
            || (CsrDijkstra::new(node_count), vec![0usize; edge_count]),
            |(scratch, counts), index| {
                scratch.run(csr, entry_distances, roots[index]);
                for &node in scratch.reached() {
                    if let Some(entry) = scratch.parent_entry(node) {
                        counts[csr.entry_edge_id(entry)] += 1;
                    }
                }
            },
            |(_, counts), (_, partial)| {
                for (count, other) in counts.iter_mut().zip(partial) {
                    *count += other;
                }
            },
        );
        counts
    }
}

/// The High Salience Skeleton backbone extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighSalienceSkeleton {
    /// How proximity weights are converted to distances for the shortest-path
    /// trees. The original HSS uses the inverse transform; the negative-log
    /// alternative is exposed for the ablation benchmarks.
    pub transform: DistanceTransform,
}

impl Default for HighSalienceSkeleton {
    fn default() -> Self {
        HighSalienceSkeleton {
            transform: DistanceTransform::Inverse,
        }
    }
}

impl HighSalienceSkeleton {
    /// Create the extractor with the canonical inverse-weight distance transform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the extractor with a custom distance transform.
    pub fn with_transform(transform: DistanceTransform) -> Self {
        HighSalienceSkeleton { transform }
    }

    /// Score every edge using the parallel CSR engine with an explicit worker
    /// count (`0` means "decide automatically", honoring `BACKBONING_THREADS`).
    ///
    /// The salience of every edge is identical for every `threads` value: each
    /// worker accumulates integer tree-membership counters over a disjoint
    /// range of roots, and integer merges are exact.
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        let node_count = graph.node_count();
        // Borrowed when the input already is compact; built once otherwise.
        let csr = graph.to_csr()?;
        let entry_distances = csr_entry_distances(&csr, self.transform);
        let roots: Vec<NodeId> = (0..node_count).collect();
        let tree_membership =
            tree_membership_counts(&csr, &entry_distances, &roots, threads, graph.edge_count());
        Ok(self.scored_from_membership(
            graph,
            &tree_membership,
            node_count,
            BackboneExtractor::name(self),
        ))
    }

    /// Estimate every edge's salience from `roots` deterministically sampled
    /// shortest-path-tree roots (see [`sample_roots`]), using the same CSR
    /// engines and thread fan-out as the exact skeleton.
    ///
    /// The estimate is unbiased and obeys the Hoeffding bounds of
    /// [`salience_error_bound`] / [`max_salience_error_bound`]. With
    /// `roots ≥ |V|` the sample is every node and the scores are bit-identical
    /// to [`Self::score_with_threads`] (pinned by `tests/parallel_parity.rs`); the
    /// result is deterministic for a fixed `(roots, seed)` regardless of
    /// `threads`. Errors on `roots == 0`.
    pub fn score_sampled_with_threads<G: GraphView>(
        &self,
        graph: &G,
        roots: usize,
        seed: u64,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        if roots == 0 {
            return Err(BackboneError::InvalidParameter {
                parameter: "hss-roots",
                message: "sampled-root HSS needs at least one root".to_string(),
            });
        }
        let node_count = graph.node_count();
        let csr = graph.to_csr()?;
        let entry_distances = csr_entry_distances(&csr, self.transform);
        let selected = sample_roots(node_count, roots, seed);
        let tree_membership = tree_membership_counts(
            &csr,
            &entry_distances,
            &selected,
            threads,
            graph.edge_count(),
        );
        Ok(self.scored_from_membership(
            graph,
            &tree_membership,
            selected.len(),
            HSS_APPROX_SCORE_NAME,
        ))
    }

    /// The seed adjacency-list implementation: one full Dijkstra (with fresh
    /// allocations) per root and a hash lookup per tree edge, single-threaded.
    ///
    /// Kept as the reference the parity tests compare the CSR engine against,
    /// and as the baseline the `bench_snapshot` perf trajectory measures
    /// speedups over.
    pub fn score_adjacency_reference(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        let mut tree_membership = vec![0usize; graph.edge_count()];
        for root in graph.nodes() {
            let tree = dijkstra(graph, root, self.transform)?;
            for (parent, child) in tree.tree_edges() {
                // Map the tree edge back to the stored edge. For directed
                // graphs tree edges follow edge direction by construction; for
                // undirected graphs edge_index resolves either orientation.
                if let Some(edge_index) = graph.edge_index(parent, child) {
                    tree_membership[edge_index] += 1;
                }
            }
        }
        let node_count = graph.node_count();
        Ok(self.scored_from_membership(
            graph,
            &tree_membership,
            node_count,
            BackboneExtractor::name(self),
        ))
    }

    /// Turn per-edge tree-membership counts into salience scores: the count
    /// divided by `denominator` (the number of roots whose trees were grown),
    /// stamped with `score_name`.
    fn scored_from_membership<G: GraphView>(
        &self,
        graph: &G,
        tree_membership: &[usize],
        denominator: usize,
        score_name: &'static str,
    ) -> ScoredEdges {
        let node_count = graph.node_count();
        let mut scored = Vec::with_capacity(graph.edge_count());
        for edge in graph.edges() {
            let salience = if denominator > 0 {
                tree_membership[edge.index] as f64 / denominator as f64
            } else {
                0.0
            };
            scored.push(ScoredEdge {
                edge_index: edge.index,
                source: edge.source,
                target: edge.target,
                weight: edge.weight,
                score: salience,
                raw_score: None,
                std_dev: None,
                p_value: None,
            });
        }
        ScoredEdges::new(score_name, node_count, scored)
    }
}

impl BackboneExtractor for HighSalienceSkeleton {
    fn name(&self) -> &'static str {
        "high_salience_skeleton"
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, GraphBuilder, WeightedGraph};

    #[test]
    fn salience_is_a_fraction() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(2, 3, 10.0)
            .indexed_edge(0, 3, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!((0.0..=1.0).contains(&edge.score));
        }
    }

    #[test]
    fn path_graph_edges_have_full_salience() {
        // On a path every edge lies on every shortest-path tree.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 2.0)
            .indexed_edge(1, 2, 3.0)
            .indexed_edge(2, 3, 4.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!((edge.score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weak_shortcut_has_low_salience() {
        // A strong path 0-1-2 and a weak direct edge 0-2: with inverse-weight
        // distances the detour is shorter, so the weak shortcut joins no tree.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(0, 2, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        let shortcut = scored.get(graph.edge_index(0, 2).unwrap()).unwrap();
        let trunk = scored.get(graph.edge_index(0, 1).unwrap()).unwrap();
        assert_eq!(shortcut.score, 0.0);
        assert!((trunk.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_hub_edges_are_fully_salient() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(0, 3, 1.0)
            .indexed_edge(0, 4, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!((edge.score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn salience_is_bimodal_on_two_communities() {
        // Two tight triangles joined by a single bridge: the bridge must appear
        // in every tree, intra-triangle edges only in some.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(0, 2, 10.0)
            .indexed_edge(3, 4, 10.0)
            .indexed_edge(4, 5, 10.0)
            .indexed_edge(3, 5, 10.0)
            .indexed_edge(2, 3, 5.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        let bridge = scored.get(graph.edge_index(2, 3).unwrap()).unwrap();
        assert!((bridge.score - 1.0).abs() < 1e-12);
        // Every intra-triangle edge has strictly smaller salience than the bridge.
        for edge in scored.iter() {
            if edge.edge_index != bridge.edge_index {
                assert!(edge.score < 1.0);
            }
        }
    }

    #[test]
    fn directed_graphs_are_supported() {
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 3);
        graph.add_edge(0, 1, 5.0).unwrap();
        graph.add_edge(1, 2, 5.0).unwrap();
        graph.add_edge(2, 0, 5.0).unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        // Each edge lies on the unique directed path from two of the three roots.
        for edge in scored.iter() {
            assert!(edge.score > 0.0);
            assert!(edge.score <= 1.0);
        }
    }

    #[test]
    fn transform_variants_give_same_ranking_on_simple_graph() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(0, 2, 1.0)
            .build()
            .unwrap();
        let inverse = HighSalienceSkeleton::new().score(&graph).unwrap();
        let neg_log = HighSalienceSkeleton::with_transform(DistanceTransform::NegativeLog)
            .score(&graph)
            .unwrap();
        let shortcut = graph.edge_index(0, 2).unwrap();
        assert_eq!(
            inverse.get(shortcut).unwrap().score,
            neg_log.get(shortcut).unwrap().score
        );
    }

    #[test]
    fn empty_graph_is_handled() {
        let empty = WeightedGraph::undirected();
        let scored = HighSalienceSkeleton::new().score(&empty).unwrap();
        assert!(scored.is_empty());
    }

    #[test]
    fn disconnected_components_are_scored_independently() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(2, 3, 1.0)
            .build()
            .unwrap();
        let scored = HighSalienceSkeleton::new().score(&graph).unwrap();
        // Each edge appears in the trees of its own component's two nodes only.
        for edge in scored.iter() {
            assert!((edge.score - 0.5).abs() < 1e-12);
        }
    }

    fn community_graph() -> WeightedGraph {
        GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 10.0)
            .indexed_edge(0, 2, 10.0)
            .indexed_edge(3, 4, 10.0)
            .indexed_edge(4, 5, 10.0)
            .indexed_edge(3, 5, 10.0)
            .indexed_edge(2, 3, 5.0)
            .build()
            .unwrap()
    }

    #[test]
    fn sample_roots_are_distinct_sorted_and_deterministic() {
        let roots = sample_roots(1000, 64, 4242);
        assert_eq!(roots.len(), 64);
        assert!(roots.windows(2).all(|pair| pair[0] < pair[1]));
        assert!(roots.iter().all(|&root| root < 1000));
        assert_eq!(roots, sample_roots(1000, 64, 4242));
        assert_ne!(roots, sample_roots(1000, 64, 4243));
    }

    #[test]
    fn sample_roots_with_k_at_least_v_selects_every_node() {
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(sample_roots(10, 10, 7), all);
        assert_eq!(sample_roots(10, 1000, 7), all);
    }

    #[test]
    fn sampled_scores_with_all_roots_match_exact() {
        let graph = community_graph();
        let hss = HighSalienceSkeleton::new();
        let exact = hss.score_with_threads(&graph, 1).unwrap();
        let sampled = hss
            .score_sampled_with_threads(&graph, graph.node_count(), 99, 1)
            .unwrap();
        assert_eq!(sampled.method(), HSS_APPROX_SCORE_NAME);
        for (a, b) in exact.iter().zip(sampled.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn sampled_scores_are_deterministic_and_thread_invariant() {
        let graph = community_graph();
        let hss = HighSalienceSkeleton::new();
        let baseline = hss.score_sampled_with_threads(&graph, 3, 11, 1).unwrap();
        for threads in [2, 3, 8] {
            let other = hss
                .score_sampled_with_threads(&graph, 3, 11, threads)
                .unwrap();
            for (a, b) in baseline.iter().zip(other.iter()) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn sampled_scores_use_the_sample_size_as_denominator() {
        // The bridge edge 2–3 lies on every shortest-path tree, so any sample
        // of roots must give it salience exactly 1.
        let graph = community_graph();
        let sampled = HighSalienceSkeleton::new()
            .score_sampled_with_threads(&graph, 3, 5, 1)
            .unwrap();
        let bridge = sampled.get(graph.edge_index(2, 3).unwrap()).unwrap();
        assert_eq!(bridge.score, 1.0);
    }

    #[test]
    fn zero_roots_are_rejected() {
        let graph = community_graph();
        let err = HighSalienceSkeleton::new()
            .score_sampled_with_threads(&graph, 0, 5, 1)
            .unwrap_err();
        assert!(matches!(
            err,
            BackboneError::InvalidParameter {
                parameter: "hss-roots",
                ..
            }
        ));
    }

    #[test]
    fn error_bounds_shrink_with_more_roots() {
        let loose = salience_error_bound(64, 0.95);
        let tight = salience_error_bound(1024, 0.95);
        assert!(tight < loose);
        // The union bound dominates the per-edge bound.
        assert!(max_salience_error_bound(64, 10_000, 0.95) > loose);
        // 2exp(-2Kε²) = 0.05 at K=1024 → ε ≈ 0.0424.
        assert!((salience_error_bound(1024, 0.95) - 0.042448).abs() < 1e-4);
    }
}
