//! The Maximum Spanning Tree backbone.
//!
//! A classic parameter-free baseline (paper, Section III-B): keep, per
//! connected component, the spanning tree of maximum total weight. It
//! guarantees full node coverage by construction, but — being a tree — it
//! destroys transitivity and community structure, which is the paper's main
//! criticism of it.

use backboning_graph::algorithms::spanning_tree::maximum_spanning_tree;
use backboning_graph::{GraphView, WeightedGraph};

use crate::error::BackboneResult;
use crate::scored::{BackboneExtractor, ScoredEdge, ScoredEdges};

/// The Maximum Spanning Tree backbone extractor.
///
/// Tree edges receive score 1, all other edges score 0, so any threshold in
/// `(0, 1]` selects exactly the spanning forest. [`MaximumSpanningTree::fixed_edge_set`]
/// returns the forest directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaximumSpanningTree;

impl MaximumSpanningTree {
    /// Create the extractor.
    pub fn new() -> Self {
        MaximumSpanningTree
    }

    /// The maximum spanning forest as dense edge indices.
    pub fn fixed_edge_set<G: GraphView>(&self, graph: &G) -> Vec<usize> {
        maximum_spanning_tree(graph)
    }

    /// Convenience: build the spanning-forest backbone graph.
    pub fn extract_fixed<G: GraphView>(&self, graph: &G) -> BackboneResult<WeightedGraph> {
        Ok(graph.subgraph_with_edges(&self.fixed_edge_set(graph))?)
    }

    /// Score every edge of any graph representation (tree edges score 1, the
    /// rest 0); `_threads` is accepted for registry uniformity (Kruskal is
    /// inherently sequential).
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        _threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        let tree: std::collections::HashSet<usize> =
            maximum_spanning_tree(graph).into_iter().collect();
        let scored = graph
            .edges()
            .map(|edge| ScoredEdge {
                edge_index: edge.index,
                source: edge.source,
                target: edge.target,
                weight: edge.weight,
                score: if tree.contains(&edge.index) { 1.0 } else { 0.0 },
                raw_score: None,
                std_dev: None,
                p_value: None,
            })
            .collect();
        Ok(ScoredEdges::new(
            BackboneExtractor::name(self),
            graph.node_count(),
            scored,
        ))
    }
}

impl BackboneExtractor for MaximumSpanningTree {
    fn name(&self) -> &'static str {
        "maximum_spanning_tree"
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::algorithms::components::{component_count, is_connected};
    use backboning_graph::generators::complete_graph;
    use backboning_graph::{Direction, WeightedGraph};

    #[test]
    fn tree_edges_get_unit_score() {
        let graph = WeightedGraph::from_edges(
            Direction::Undirected,
            3,
            vec![(0, 1, 1.0), (1, 2, 3.0), (0, 2, 2.0)],
        )
        .unwrap();
        let scored = MaximumSpanningTree::new().score(&graph).unwrap();
        let selected = scored.filter(0.5);
        assert_eq!(selected.len(), 2);
        // The weakest edge (weight 1) is dropped.
        assert!(!selected.contains(&0));
    }

    #[test]
    fn backbone_preserves_connectivity_and_coverage() {
        let graph = complete_graph(10, 1.0).unwrap();
        let backbone = MaximumSpanningTree::new().extract_fixed(&graph).unwrap();
        assert_eq!(backbone.node_count(), 10);
        assert_eq!(backbone.edge_count(), 9);
        assert!(is_connected(&backbone));
        assert!(backbone.isolates().is_empty());
    }

    #[test]
    fn forest_on_disconnected_input() {
        let graph = WeightedGraph::from_edges(
            Direction::Undirected,
            6,
            vec![(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0), (4, 5, 2.0)],
        )
        .unwrap();
        let backbone = MaximumSpanningTree::new().extract_fixed(&graph).unwrap();
        assert_eq!(component_count(&backbone), 2);
        assert_eq!(backbone.edge_count(), 4);
    }

    #[test]
    fn fixed_edge_set_matches_scored_filter() {
        let graph = complete_graph(7, 1.0).unwrap();
        let mst = MaximumSpanningTree::new();
        let fixed = mst.fixed_edge_set(&graph);
        let scored = mst.score(&graph).unwrap();
        let mut filtered = scored.filter(0.5);
        filtered.sort_unstable();
        assert_eq!(fixed, filtered);
    }

    #[test]
    fn empty_graph_is_handled() {
        let empty = WeightedGraph::undirected();
        let scored = MaximumSpanningTree::new().score(&empty).unwrap();
        assert!(scored.is_empty());
        assert!(MaximumSpanningTree::new().fixed_edge_set(&empty).is_empty());
    }
}
