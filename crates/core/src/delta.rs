//! Exact incremental rescoring after a batched graph patch.
//!
//! When a served graph mutates (edges added, removed or reweighted through
//! the [`backboning_graph::delta`] overlay), recomputing every method from
//! scratch throws away almost all of the previous work: for the
//! locally-defined measures, an edge's score depends only on its own weight
//! and its endpoints' strengths and degrees. This module exploits that with
//! a per-method [`DeltaStrategy`] and one entry point, [`delta_rescore`],
//! which updates a previous [`ScoredEdges`] to the patched graph **exactly**
//! — the results are bit-identical to from-scratch scoring on the patched
//! graph, not an approximation (pinned by the churn-parity proptest suite).
//!
//! Why exactness holds: the overlay's compaction keeps surviving edges in
//! their original relative order and appends additions at the end, so every
//! *untouched* node's adjacency row lists the same weights in the same
//! ascending-edge-id order as before — its strength sum accumulates in the
//! same order and keeps identical `f64` bits. Touched edges are rescored
//! through the exact same per-edge arithmetic as the batch scorers (shared
//! code, not a re-implementation), from strengths read off the patched CSR.
//!
//! Strategy per method:
//!
//! | Strategy | Methods | Work per patch |
//! |---|---|---|
//! | [`EdgeLocal`](DeltaStrategy::EdgeLocal) | naive threshold | changed edges only |
//! | [`NodeLocal`](DeltaStrategy::NodeLocal) | disparity filter | incident edges of touched nodes |
//! | [`TotalCoupled`](DeltaStrategy::TotalCoupled) | noise-corrected (both variants) | full pass (scores couple to the grand total) |
//! | [`Global`](DeltaStrategy::Global) | doubly stochastic | full pass (global Sinkhorn fixed point) |
//! | [`Invalidate`](DeltaStrategy::Invalidate) | HSS, HSS-approx, MST | staged full recompute |
//!
//! `TotalCoupled`, `Global` and `Invalidate` all fall back to
//! [`Method::score_with_threads`] on the patched graph — still exact, just
//! not sublinear; serving layers use [`DeltaStrategy::Invalidate`] to decide
//! whether to recompute eagerly or lazily.

use std::collections::{BTreeSet, HashMap};

use backboning_graph::{CsrGraph, DeltaGraph, PatchEffect};

use crate::disparity;
use crate::error::{BackboneError, BackboneResult};
use crate::method::Method;
use crate::scored::{ScoredEdge, ScoredEdges, Symmetrization};

/// How a method's scores respond to a graph patch — what fraction of the
/// previous scoring survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaStrategy {
    /// An edge's score depends only on the edge itself; only changed edges
    /// need rescoring.
    EdgeLocal,
    /// An edge's score depends on its endpoints' strengths and degrees;
    /// every edge incident to a touched node needs rescoring.
    NodeLocal,
    /// Scores couple to the network's grand total, so any weight change
    /// moves every score: incremental update degenerates to an (exact)
    /// full pass.
    TotalCoupled,
    /// Scores are a global fixed point over the whole graph; a full pass is
    /// required.
    Global,
    /// Path-based structure can change arbitrarily far from the patch; the
    /// cached result must be invalidated and recomputed from scratch.
    Invalidate,
}

impl Method {
    /// The incremental-maintenance strategy of this method's scores.
    pub fn delta_strategy(&self) -> DeltaStrategy {
        match self {
            Method::NaiveThreshold => DeltaStrategy::EdgeLocal,
            Method::DisparityFilter => DeltaStrategy::NodeLocal,
            Method::NoiseCorrected | Method::NoiseCorrectedBinomial => DeltaStrategy::TotalCoupled,
            Method::DoublyStochastic => DeltaStrategy::Global,
            Method::MaximumSpanningTree
            | Method::HighSalienceSkeleton
            | Method::HssApprox { .. } => DeltaStrategy::Invalidate,
        }
    }
}

fn invalid(message: String) -> BackboneError {
    BackboneError::InvalidParameter {
        parameter: "previous",
        message,
    }
}

/// Update `previous` (scores of the pre-patch graph) to `graph` (the
/// patched, compacted CSR), given the [`PatchEffect`] the overlay reported
/// for the batch. The result is bit-identical to
/// `method.score_with_threads(graph, threads)`; sublinear for
/// [`EdgeLocal`](DeltaStrategy::EdgeLocal) and
/// [`NodeLocal`](DeltaStrategy::NodeLocal) methods, a full (still exact)
/// pass otherwise.
pub fn delta_rescore(
    method: Method,
    graph: &CsrGraph,
    previous: &ScoredEdges,
    effect: &PatchEffect,
    threads: usize,
) -> BackboneResult<ScoredEdges> {
    let Some(node_local) = delta_applicability(method, graph, previous, effect)? else {
        return method.score_with_threads(graph, threads);
    };
    let edges = carried_edges(graph, previous, effect)?;
    rescore_carried(method, graph, edges, effect, node_local)
}

/// The zero-copy form of [`delta_rescore`]: consume the previous scores and
/// update them in place. For a reweight-only batch (no structural change)
/// this skips the O(edges) carry-over entirely — the whole cost is the
/// rescore set, which is what makes a small batch on a large graph
/// sublinear in practice, not just in rescored-edge count. Structural
/// batches and non-local methods behave exactly like [`delta_rescore`].
/// The result is bit-identical to `method.score_with_threads(graph,
/// threads)` either way.
pub fn delta_rescore_in_place(
    method: Method,
    graph: &CsrGraph,
    previous: ScoredEdges,
    effect: &PatchEffect,
    threads: usize,
) -> BackboneResult<ScoredEdges> {
    let Some(node_local) = delta_applicability(method, graph, &previous, effect)? else {
        return method.score_with_threads(graph, threads);
    };
    let edges = if effect.structure_changed {
        carried_edges(graph, &previous, effect)?
    } else {
        previous.into_edges()
    };
    rescore_carried(method, graph, edges, effect, node_local)
}

/// Shared validation and strategy dispatch: `Ok(Some(node_local))` when the
/// method has an incremental path on this graph, `Ok(None)` when the caller
/// must fall back to a full (still exact) pass.
fn delta_applicability(
    method: Method,
    graph: &CsrGraph,
    previous: &ScoredEdges,
    effect: &PatchEffect,
) -> BackboneResult<Option<bool>> {
    if previous.method() != method.score_name() {
        return Err(invalid(format!(
            "previous scores are for `{}`, not `{}`",
            previous.method(),
            method.score_name()
        )));
    }
    if previous.len() != effect.old_edge_count {
        return Err(invalid(format!(
            "previous scores cover {} edges but the patch started from {}",
            previous.len(),
            effect.old_edge_count
        )));
    }
    Ok(match method.delta_strategy() {
        DeltaStrategy::EdgeLocal => Some(false),
        // The CSR core keeps no in-adjacency rows, so a directed node-local
        // rescore cannot enumerate a touched target's in-edges: fall back.
        DeltaStrategy::NodeLocal if !graph.is_directed() => Some(true),
        _ => None,
    })
}

/// Carry surviving scores over, re-indexed through the (monotone) remap, so
/// position k always holds edge id k.
fn carried_edges(
    graph: &CsrGraph,
    previous: &ScoredEdges,
    effect: &PatchEffect,
) -> BackboneResult<Vec<ScoredEdge>> {
    let mut edges: Vec<ScoredEdge> = Vec::with_capacity(graph.edge_count());
    match &effect.remap {
        Some(remap) => {
            for (old_id, edge) in previous.iter().enumerate() {
                if let Some(new_id) = remap[old_id] {
                    let mut edge = *edge;
                    edge.edge_index = new_id as usize;
                    debug_assert_eq!(edge.edge_index, edges.len());
                    edges.push(edge);
                }
            }
        }
        None => edges.extend(previous.iter().copied()),
    }
    // Placeholders for added edges (every appended id is in changed_edges
    // and gets rescored below).
    for id in edges.len()..graph.edge_count() {
        let edge = graph
            .edge(id)
            .ok_or_else(|| invalid(format!("patched graph has no edge {id}")))?;
        edges.push(ScoredEdge {
            edge_index: id,
            source: edge.source,
            target: edge.target,
            weight: edge.weight,
            score: 0.0,
            raw_score: None,
            std_dev: None,
            p_value: None,
        });
    }
    Ok(edges)
}

/// Rescore the touched subset of an already-carried edge vector. Every
/// changed edge (and, for node-local methods, every edge incident to a
/// touched node) is recomputed from the patched graph, so stale weights in
/// `edges` at those positions are overwritten wholesale.
fn rescore_carried(
    method: Method,
    graph: &CsrGraph,
    mut edges: Vec<ScoredEdge>,
    effect: &PatchEffect,
    node_local: bool,
) -> BackboneResult<ScoredEdges> {
    if edges.len() != graph.edge_count() {
        return Err(invalid(format!(
            "patch effect yields {} edges but the graph has {}",
            edges.len(),
            graph.edge_count()
        )));
    }

    // The rescore set: changed edges, plus — for node-local methods — every
    // edge incident to a touched node (their strengths changed).
    let mut rescore: BTreeSet<usize> = effect.changed_edges.iter().copied().collect();
    if node_local {
        for &node in &effect.touched_nodes {
            for &edge_id in graph.edge_ids(node) {
                rescore.insert(edge_id as usize);
            }
        }
    }

    // Strengths of every endpoint involved, each summed over its adjacency
    // row in ascending-edge-id order — the exact accumulation order of
    // `NetworkTotals`, hence the same bits.
    let mut strengths: HashMap<usize, f64> = HashMap::new();
    if node_local {
        for &id in &rescore {
            let edge = graph.edge(id).expect("rescore id in range");
            for node in [edge.source, edge.target] {
                strengths
                    .entry(node)
                    .or_insert_with(|| graph.strength(node));
            }
        }
    }

    for &id in &rescore {
        let edge = graph.edge(id).expect("rescore id in range");
        edges[id] = match method {
            Method::NaiveThreshold => ScoredEdge {
                edge_index: id,
                source: edge.source,
                target: edge.target,
                weight: edge.weight,
                score: edge.weight,
                raw_score: None,
                std_dev: None,
                p_value: None,
            },
            Method::DisparityFilter => disparity::score_edge(
                Symmetrization::Max,
                id,
                edge.source,
                edge.target,
                edge.weight,
                strengths[&edge.source],
                graph.out_degree(edge.source),
                strengths[&edge.target],
                graph.in_degree(edge.target),
            ),
            _ => unreachable!("only edge- and node-local methods reach here"),
        };
    }

    Ok(ScoredEdges::new(
        method.score_name(),
        graph.node_count(),
        edges,
    ))
}

/// Convenience wrapper: rescore every method in `methods` against the
/// patched graph, chaining from the matching entry of `previous` (keyed by
/// [`Method::score_name`]); methods without a previous entry are scored
/// from scratch. Used by the CLI's offline parity runs.
pub fn delta_rescore_all(
    methods: &[Method],
    graph: &CsrGraph,
    previous: &HashMap<&'static str, ScoredEdges>,
    effect: &PatchEffect,
    threads: usize,
) -> BackboneResult<Vec<(Method, ScoredEdges)>> {
    methods
        .iter()
        .map(|&method| {
            let scored = match previous.get(method.score_name()) {
                Some(prior) => delta_rescore(method, graph, prior, effect, threads)?,
                None => method.score_with_threads(graph, threads)?,
            };
            Ok((method, scored))
        })
        .collect()
}

/// Apply a parsed delta batch to a compact graph and return the patched
/// graph together with the effect — the one-call form used by offline
/// tools. The overlay round-trip preserves bit-identical summation order
/// (see [`DeltaGraph::to_csr`]).
pub fn apply_batch(
    graph: &CsrGraph,
    batch: &backboning_graph::DeltaBatch,
) -> BackboneResult<(CsrGraph, PatchEffect)> {
    let mut delta = DeltaGraph::from_csr(graph);
    let effect = delta.apply(batch)?;
    let patched = if effect.structure_changed {
        delta.to_csr()?
    } else {
        let updates: Vec<(usize, f64)> = effect
            .changed_edges
            .iter()
            .map(|&id| (id, delta.edge_weight(id).expect("changed edge is live")))
            .collect();
        graph.with_reweighted_edges(&updates)?
    };
    Ok((patched, effect))
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::io::{read_edge_list_csr_str, EdgeListOptions};
    use backboning_graph::{DeltaBatch, Direction};

    fn base() -> CsrGraph {
        let options = EdgeListOptions::with_direction(Direction::Undirected);
        read_edge_list_csr_str("a b 4\nb c 1\nc d 6\na d 2\nb d 3\na c 5\n", &options).unwrap()
    }

    const LOCAL_METHODS: [Method; 4] = [
        Method::NaiveThreshold,
        Method::DisparityFilter,
        Method::NoiseCorrected,
        Method::DoublyStochastic,
    ];

    #[test]
    fn strategies_cover_every_method() {
        assert_eq!(
            Method::NaiveThreshold.delta_strategy(),
            DeltaStrategy::EdgeLocal
        );
        assert_eq!(
            Method::DisparityFilter.delta_strategy(),
            DeltaStrategy::NodeLocal
        );
        assert_eq!(
            Method::NoiseCorrected.delta_strategy(),
            DeltaStrategy::TotalCoupled
        );
        assert_eq!(
            Method::DoublyStochastic.delta_strategy(),
            DeltaStrategy::Global
        );
        for method in [
            Method::MaximumSpanningTree,
            Method::HighSalienceSkeleton,
            Method::HssApprox { roots: 8, seed: 1 },
        ] {
            assert_eq!(method.delta_strategy(), DeltaStrategy::Invalidate);
        }
    }

    #[test]
    fn rescore_matches_from_scratch_bit_for_bit() {
        let graph = base();
        let batch =
            DeltaBatch::parse_tsv("remove b c\nadd b e 2.5\nreweight a b 7\nadd d e 1\n").unwrap();
        let (patched, effect) = apply_batch(&graph, &batch).unwrap();
        for method in LOCAL_METHODS {
            let previous = method.score_with_threads(&graph, 1).unwrap();
            let incremental = delta_rescore(method, &patched, &previous, &effect, 1).unwrap();
            let fresh = method.score_with_threads(&patched, 1).unwrap();
            assert_eq!(incremental, fresh, "{method}");
        }
    }

    #[test]
    fn reweight_only_rescore_matches_from_scratch() {
        let graph = base();
        let batch = DeltaBatch::parse_tsv("reweight a b 0.25\nreweight b d 8\n").unwrap();
        let (patched, effect) = apply_batch(&graph, &batch).unwrap();
        assert!(!effect.structure_changed);
        for method in LOCAL_METHODS {
            let previous = method.score_with_threads(&graph, 1).unwrap();
            let incremental = delta_rescore(method, &patched, &previous, &effect, 1).unwrap();
            let fresh = method.score_with_threads(&patched, 1).unwrap();
            assert_eq!(incremental, fresh, "{method}");
        }
    }

    #[test]
    fn directed_node_local_falls_back_to_full() {
        let options = EdgeListOptions::default();
        let graph = read_edge_list_csr_str("a b 2\nb c 3\nc a 4\nb a 1\n", &options).unwrap();
        let batch = DeltaBatch::parse_tsv("reweight a b 9\n").unwrap();
        let (patched, effect) = apply_batch(&graph, &batch).unwrap();
        let previous = Method::DisparityFilter
            .score_with_threads(&graph, 1)
            .unwrap();
        let incremental =
            delta_rescore(Method::DisparityFilter, &patched, &previous, &effect, 1).unwrap();
        let fresh = Method::DisparityFilter
            .score_with_threads(&patched, 1)
            .unwrap();
        assert_eq!(incremental, fresh);
    }

    #[test]
    fn mismatched_previous_scores_are_rejected() {
        let graph = base();
        let batch = DeltaBatch::parse_tsv("reweight a b 1\n").unwrap();
        let (patched, effect) = apply_batch(&graph, &batch).unwrap();
        let df = Method::DisparityFilter
            .score_with_threads(&graph, 1)
            .unwrap();
        let err = delta_rescore(Method::NaiveThreshold, &patched, &df, &effect, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("disparity_filter"), "{err}");

        let stale = Method::NaiveThreshold
            .score_with_threads(&patched, 1)
            .unwrap();
        // `stale` has the patched edge count; chain it against a structural
        // effect whose old count differs.
        let structural = DeltaBatch::parse_tsv("add a e 1\n").unwrap();
        let (patched2, effect2) = apply_batch(&patched, &structural).unwrap();
        let wrong = Method::NaiveThreshold
            .score_with_threads(&patched2, 1)
            .unwrap();
        let err = delta_rescore(Method::NaiveThreshold, &patched2, &wrong, &effect2, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("edges"), "{err}");
        let _ = stale;
    }

    #[test]
    fn chained_patches_stay_exact() {
        // Doubly stochastic is excluded: Sinkhorn legitimately fails to
        // converge on some of the tiny intermediate graphs, identically on
        // both the incremental and the from-scratch path.
        let methods = [
            Method::NaiveThreshold,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ];
        let mut graph = base();
        let mut scores: HashMap<&'static str, ScoredEdges> = methods
            .iter()
            .map(|&m| (m.score_name(), m.score_with_threads(&graph, 1).unwrap()))
            .collect();
        for text in [
            "add c e 2\nreweight a c 1.5\n",
            "remove a d\nremove b d\n",
            "add a d 9\nreweight c e 0.5\nadd d e 4\n",
        ] {
            let batch = DeltaBatch::parse_tsv(text).unwrap();
            let (patched, effect) = apply_batch(&graph, &batch).unwrap();
            let rescored = delta_rescore_all(&methods, &patched, &scores, &effect, 1).unwrap();
            for (method, scored) in &rescored {
                let fresh = method.score_with_threads(&patched, 1).unwrap();
                assert_eq!(scored, &fresh, "{method} after {text:?}");
            }
            scores = rescored
                .into_iter()
                .map(|(m, s)| (m.score_name(), s))
                .collect();
            graph = patched;
        }
    }
}
