//! # backboning
//!
//! A Rust implementation of **Network Backboning with Noisy Data**
//! (Michele Coscia & Frank M. H. Neffke, ICDE 2017).
//!
//! Network backboning extracts the statistically significant "backbone" of a
//! dense, noisy weighted network by pruning edges whose weights are compatible
//! with a random null model. This crate contains the paper's primary
//! contribution — the **Noise-Corrected (NC) backbone** — together with every
//! baseline the paper compares against, all operating on the same scored-edge
//! API:
//!
//! | Method | Type | Reference |
//! |---|---|---|
//! | [`NoiseCorrected`] | statistical, Bayesian binomial null model | Coscia & Neffke 2017 (this paper) |
//! | [`NoiseCorrectedBinomial`] | direct binomial p-values (paper footnote 2) | Coscia & Neffke 2017 |
//! | [`DisparityFilter`] | statistical, per-node exponential null model | Serrano, Boguñá & Vespignani 2009 |
//! | [`HighSalienceSkeleton`] | structural, shortest-path-tree superposition | Grady, Thiemann & Brockmann 2012 |
//! | [`DoublyStochastic`] | structural, Sinkhorn–Knopp normalisation | Slater 2009 |
//! | [`MaximumSpanningTree`] | structural, Kruskal | classic |
//! | [`NaiveThreshold`] | weight threshold | classic |
//!
//! # Quick start
//!
//! ```
//! use backboning_graph::GraphBuilder;
//! use backboning::{BackboneExtractor, NoiseCorrected};
//!
//! // A noisy star: the hub connects to everything, but the only *surprising*
//! // edge is the one between the two peripheral nodes.
//! let graph = GraphBuilder::undirected()
//!     .edge("hub", "a", 10.0)
//!     .edge("hub", "b", 10.0)
//!     .edge("hub", "c", 12.0)
//!     .edge("hub", "d", 11.0)
//!     .edge("a", "b", 6.0)
//!     .build()
//!     .unwrap();
//!
//! let scored = NoiseCorrected::default().score(&graph).unwrap();
//! // Keep edges at least 1.64 standard deviations above the null expectation
//! // (roughly a one-tailed p-value of 0.05).
//! let backbone = scored.backbone(&graph, 1.64).unwrap();
//! assert!(backbone.edge_count() <= graph.edge_count());
//! ```
//!
//! The scored-edge representation ([`ScoredEdges`]) supports thresholding by
//! the method's natural significance parameter, selecting the top-`k` edges,
//! or selecting a fixed share of edges — the latter two are what the paper's
//! evaluation sweeps (coverage, quality, stability) use to compare methods at
//! equal backbone sizes.
//!
//! # The pipeline
//!
//! The [`Pipeline`] type composes the whole flow — method selection
//! ([`Method`]), scoring, and a pruning [`ThresholdPolicy`] — behind one
//! `run` call. It is the engine of the `backbone` command-line tool and of
//! the paper's reproduction binaries alike:
//!
//! ```
//! use backboning::{Pipeline, Method, ThresholdPolicy};
//! use backboning_graph::io::{read_edge_list_str, EdgeListOptions};
//! use backboning_graph::Direction;
//!
//! let edge_list = "hub a 10\nhub b 10\nhub c 12\nhub d 11\na b 6\n";
//! let options = EdgeListOptions::with_direction(Direction::Undirected);
//! let graph = read_edge_list_str(edge_list, &options).unwrap();
//!
//! let run = Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::TopK(3))
//!     .run(&graph)
//!     .unwrap();
//! assert_eq!(run.backbone.edge_count(), 3);
//! assert!(run.coverage > 0.0 && run.coverage <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod disparity;
pub mod doubly_stochastic;
pub mod error;
pub mod high_salience;
pub mod json;
pub mod method;
pub mod naive;
pub mod noise_corrected;
pub mod pipeline;
pub mod scored;
pub mod spanning_tree;
mod totals;

pub use delta::{
    apply_batch, delta_rescore, delta_rescore_all, delta_rescore_in_place, DeltaStrategy,
};
pub use disparity::DisparityFilter;
pub use doubly_stochastic::DoublyStochastic;
pub use error::{BackboneError, BackboneResult};
pub use high_salience::HighSalienceSkeleton;
pub use method::Method;
pub use naive::NaiveThreshold;
pub use noise_corrected::{NoiseCorrected, NoiseCorrectedBinomial};
pub use pipeline::{Pipeline, PipelineRun, StageTimings, ThresholdPolicy};
pub use scored::{BackboneExtractor, ScoredEdge, ScoredEdges, Symmetrization};
pub use spanning_tree::MaximumSpanningTree;

/// The paper's suggested Noise-Corrected threshold for a one-tailed p ≈ 0.10.
pub const DELTA_P10: f64 = 1.28;
/// The paper's suggested Noise-Corrected threshold for a one-tailed p ≈ 0.05.
pub const DELTA_P05: f64 = 1.64;
/// The paper's suggested Noise-Corrected threshold for a one-tailed p ≈ 0.01.
pub const DELTA_P01: f64 = 2.32;
