//! A uniform registry over the backboning methods.
//!
//! Every consumer of this crate — the CLI, the evaluation harness, the
//! reproduction binaries — selects a method the same way: a [`Method`] value
//! dispatches to the per-module extractor types ([`NoiseCorrected`],
//! [`DisparityFilter`], …) behind one `score`/`edge_set` entry point. The
//! paper's evaluation compares six methods ([`Method::all`]); the full
//! registry ([`Method::every`]) additionally carries the binomial
//! Noise-Corrected variant from the paper's footnote 2.
//!
//! ```
//! use backboning::Method;
//! use backboning_graph::generators::complete_graph;
//!
//! let graph = complete_graph(10, 2.0).unwrap();
//! let method = Method::parse("nc").unwrap();
//! assert_eq!(method, Method::NoiseCorrected);
//! let scored = method.score(&graph).unwrap();
//! assert_eq!(scored.len(), graph.edge_count());
//! ```

use backboning_graph::{GraphView, WeightedGraph};

use crate::disparity::DisparityFilter;
use crate::doubly_stochastic::DoublyStochastic;
use crate::error::BackboneResult;
use crate::high_salience::{HighSalienceSkeleton, HSS_APPROX_SCORE_NAME};
use crate::naive::NaiveThreshold;
use crate::noise_corrected::{NoiseCorrected, NoiseCorrectedBinomial};
use crate::pipeline::{Pipeline, ThresholdPolicy};
use crate::scored::{BackboneExtractor, ScoredEdges};
use crate::spanning_tree::MaximumSpanningTree;

/// The backboning methods, selectable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Naive weight threshold.
    NaiveThreshold,
    /// Maximum spanning tree (parameter-free).
    MaximumSpanningTree,
    /// Doubly-Stochastic transformation (parameter-free).
    DoublyStochastic,
    /// High Salience Skeleton.
    HighSalienceSkeleton,
    /// High Salience Skeleton estimated from `roots` sampled shortest-path
    /// tree roots drawn deterministically from `seed` (see
    /// `HighSalienceSkeleton::score_sampled_with_threads` for the Hoeffding
    /// error bounds). Not part of the paper's evaluation sweep; it exists so
    /// HSS-style structure survives onto networks where the exact skeleton's
    /// one-tree-per-node cost is prohibitive.
    HssApprox {
        /// How many shortest-path-tree roots to sample (`≥ |V|` degenerates
        /// to the exact skeleton).
        roots: usize,
        /// Seed for the deterministic root sample.
        seed: u64,
    },
    /// Disparity Filter.
    DisparityFilter,
    /// Noise-Corrected backbone (the paper's contribution).
    NoiseCorrected,
    /// Noise-Corrected backbone, direct binomial p-value variant (the paper's
    /// footnote 2). Not part of the paper's six-method evaluation sweep.
    NoiseCorrectedBinomial,
}

impl Method {
    /// Default root-sample size for [`Method::HssApprox`]: 256 roots bound the
    /// per-edge salience error by ~0.076 at 95% confidence
    /// (`salience_error_bound(256, 0.95)`) while costing hundreds of times
    /// less than the exact skeleton on large networks.
    pub const DEFAULT_HSS_APPROX_ROOTS: usize = 256;

    /// Default sampling seed for [`Method::HssApprox`] (the same constant the
    /// repo's substrate generators use, so runs are reproducible by default).
    pub const DEFAULT_HSS_APPROX_SEED: u64 = 4242;

    /// The sampled-root HSS with the default `(roots, seed)` parameters.
    pub fn hss_approx_default() -> Method {
        Method::HssApprox {
            roots: Method::DEFAULT_HSS_APPROX_ROOTS,
            seed: Method::DEFAULT_HSS_APPROX_SEED,
        }
    }

    /// The six methods of the paper's evaluation, in the plotting order of the
    /// paper's figures.
    pub fn all() -> [Method; 6] {
        [
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::DoublyStochastic,
            Method::HighSalienceSkeleton,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ]
    }

    /// Every *exact* method in the registry, including the binomial
    /// Noise-Corrected variant (the full menu of the `backbone` CLI's
    /// `--methods all`). The sampled-root [`Method::HssApprox`] estimator is
    /// deliberately excluded: it is parameterized (its output depends on
    /// `(roots, seed)`) and approximates a method already listed here, so
    /// sweeps over `every()` stay sweeps over exact, parameter-identical
    /// methods.
    pub fn every() -> [Method; 7] {
        [
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::DoublyStochastic,
            Method::HighSalienceSkeleton,
            Method::DisparityFilter,
            Method::NoiseCorrected,
            Method::NoiseCorrectedBinomial,
        ]
    }

    /// The methods that scale to large networks (used by the Figure 9 sweep
    /// on millions of edges and by `bench_snapshot`'s large substrates).
    ///
    /// Inclusion criterion: worst-case scoring cost sub-quadratic in `|V|`
    /// (near-linear in `|E|` up to log factors). NT, MST, DF and NC are one
    /// or two passes over the edges; `HssApprox` with its default fixed root
    /// count costs `O(roots · |E|)` — a constant number of tree sweeps,
    /// independent of `|V|`. Exact HSS (`Θ(|V| · |E|)`) and DS (quadratic
    /// Sinkhorn iterations) stay excluded, as in the paper.
    pub fn scalable() -> [Method; 5] {
        [
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::DisparityFilter,
            Method::NoiseCorrected,
            Method::hss_approx_default(),
        ]
    }

    /// Short identifier used in tables (matches the paper's legend).
    pub fn short_name(&self) -> &'static str {
        match self {
            Method::NaiveThreshold => "NT",
            Method::MaximumSpanningTree => "MST",
            Method::DoublyStochastic => "DS",
            Method::HighSalienceSkeleton => "HSS",
            Method::HssApprox { .. } => "HSSA",
            Method::DisparityFilter => "DF",
            Method::NoiseCorrected => "NC",
            Method::NoiseCorrectedBinomial => "NCB",
        }
    }

    /// Full name used in reports.
    pub fn full_name(&self) -> &'static str {
        match self {
            Method::NaiveThreshold => "Naive Threshold",
            Method::MaximumSpanningTree => "Maximum Spanning Tree",
            Method::DoublyStochastic => "Doubly Stochastic",
            Method::HighSalienceSkeleton => "High Salience Skeleton",
            Method::HssApprox { .. } => "High Salience Skeleton (sampled roots)",
            Method::DisparityFilter => "Disparity Filter",
            Method::NoiseCorrected => "Noise-Corrected",
            Method::NoiseCorrectedBinomial => "Noise-Corrected (binomial)",
        }
    }

    /// The lowercase identifier used by the `backbone` CLI and the JSON run
    /// summaries.
    pub fn cli_name(&self) -> &'static str {
        match self {
            Method::NaiveThreshold => "naive",
            Method::MaximumSpanningTree => "mst",
            Method::DoublyStochastic => "ds",
            Method::HighSalienceSkeleton => "hss",
            Method::HssApprox { .. } => "hss-approx",
            Method::DisparityFilter => "df",
            Method::NoiseCorrected => "nc",
            Method::NoiseCorrectedBinomial => "ncb",
        }
    }

    /// The identifier this method's extractor stamps onto the
    /// [`ScoredEdges`] it produces (its [`BackboneExtractor::name`]); used
    /// to verify that cached scores belong to the method re-selecting over
    /// them.
    pub fn score_name(&self) -> &'static str {
        match self {
            Method::NaiveThreshold => NaiveThreshold::new().name(),
            Method::MaximumSpanningTree => MaximumSpanningTree::new().name(),
            Method::DoublyStochastic => DoublyStochastic::new().name(),
            Method::HighSalienceSkeleton => HighSalienceSkeleton::new().name(),
            Method::HssApprox { .. } => HSS_APPROX_SCORE_NAME,
            Method::DisparityFilter => DisparityFilter::new().name(),
            Method::NoiseCorrected => NoiseCorrected::default().name(),
            Method::NoiseCorrectedBinomial => NoiseCorrectedBinomial::new().name(),
        }
    }

    /// Parse a method name, case-insensitively. Accepts the CLI names
    /// (`nc`, `ncb`, `df`, `hss`, `hss-approx`, `ds`, `mst`, `naive`), the
    /// table legends (`NT`, …) and a few spelled-out aliases
    /// (`noise-corrected`, `disparity`, `high-salience`, `doubly-stochastic`,
    /// `spanning-tree`, `naive-threshold`).
    ///
    /// `hss-approx` parses to [`Method::hss_approx_default`]; callers that
    /// accept `--hss-roots` / `--hss-seed` overrides patch the fields
    /// afterwards.
    pub fn parse(name: &str) -> Option<Method> {
        match name.to_ascii_lowercase().as_str() {
            "naive" | "nt" | "naive-threshold" | "threshold" => Some(Method::NaiveThreshold),
            "mst" | "spanning-tree" | "maximum-spanning-tree" => Some(Method::MaximumSpanningTree),
            "ds" | "doubly-stochastic" => Some(Method::DoublyStochastic),
            "hss" | "high-salience" | "high-salience-skeleton" => {
                Some(Method::HighSalienceSkeleton)
            }
            "hss-approx" | "hssa" | "high-salience-approx" => Some(Method::hss_approx_default()),
            "df" | "disparity" | "disparity-filter" => Some(Method::DisparityFilter),
            "nc" | "noise-corrected" => Some(Method::NoiseCorrected),
            "ncb" | "noise-corrected-binomial" | "nc-binomial" => {
                Some(Method::NoiseCorrectedBinomial)
            }
            _ => None,
        }
    }

    /// A cache key uniquely identifying this method *and its parameters*.
    ///
    /// [`Method::cli_name`] alone is ambiguous for [`Method::HssApprox`]
    /// (every `(roots, seed)` shares the name `hss-approx`), so caches keyed
    /// by method — the server's scored-edge cache in particular — key by this
    /// string instead. Exact methods use their `cli_name` verbatim;
    /// `HssApprox` appends its parameters as
    /// `hss-approx:roots=<K>:seed=<S>`.
    pub fn cache_key(&self) -> String {
        match self {
            Method::HssApprox { roots, seed } => {
                format!("hss-approx:roots={roots}:seed={seed}")
            }
            _ => self.cli_name().to_string(),
        }
    }

    /// Whether the method has no tunable parameter (its backbone is a single
    /// fixed edge set).
    pub fn is_parameter_free(&self) -> bool {
        matches!(self, Method::MaximumSpanningTree | Method::DoublyStochastic)
    }

    /// Score every edge of the graph (either representation) with this
    /// method.
    pub fn score<G: GraphView>(&self, graph: &G) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }

    /// [`Method::score`] with an explicit worker count (`0` = automatic).
    ///
    /// Experiments that already parallelize an outer loop (e.g. the Monte
    /// Carlo trials of Figure 4) pass `1` here so the inner scoring does not
    /// nest a second thread fan-out. Naive thresholding and MST are single
    /// sequential passes and ignore the count.
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        match self {
            Method::NaiveThreshold => NaiveThreshold::new().score_with_threads(graph, threads),
            Method::MaximumSpanningTree => {
                MaximumSpanningTree::new().score_with_threads(graph, threads)
            }
            Method::DoublyStochastic => DoublyStochastic::new().score_with_threads(graph, threads),
            Method::HighSalienceSkeleton => {
                HighSalienceSkeleton::new().score_with_threads(graph, threads)
            }
            Method::HssApprox { roots, seed } => HighSalienceSkeleton::new()
                .score_sampled_with_threads(graph, *roots, *seed, threads),
            Method::DisparityFilter => DisparityFilter::new().score_with_threads(graph, threads),
            Method::NoiseCorrected => NoiseCorrected::default().score_with_threads(graph, threads),
            Method::NoiseCorrectedBinomial => {
                NoiseCorrectedBinomial::new().score_with_threads(graph, threads)
            }
        }
    }

    /// The method's fixed backbone edge set, for the parameter-free methods
    /// (MST: the spanning forest; DS: edges added by decreasing
    /// doubly-stochastic weight until the non-isolated nodes are connected),
    /// in ascending edge-index order.
    ///
    /// Returns `None` for tunable methods.
    pub fn fixed_edge_set<G: GraphView>(&self, graph: &G) -> Option<BackboneResult<Vec<usize>>> {
        if !self.is_parameter_free() {
            return None;
        }
        Some(self.score_with_threads(graph, 0).map(|scored| {
            self.fixed_edge_set_from_scores(graph, &scored)
                .expect("parameter-free methods have a fixed edge set")
        }))
    }

    /// [`Method::fixed_edge_set`], reusing an already-computed score set so
    /// the expensive scoring pass (DS: the Sinkhorn normalisation; MST:
    /// Kruskal) does not run a second time. The scores fully determine the
    /// fixed set: MST scores mark the forest edges with 1, DS scores are the
    /// doubly-stochastic weights.
    pub fn fixed_edge_set_from_scores<G: GraphView>(
        &self,
        graph: &G,
        scored: &ScoredEdges,
    ) -> Option<Vec<usize>> {
        match self {
            Method::MaximumSpanningTree => Some(scored.filter(0.5)),
            Method::DoublyStochastic => {
                Some(DoublyStochastic::fixed_edge_set_from_scores(graph, scored))
            }
            _ => None,
        }
    }

    /// The method's backbone as an edge-index set at a target edge count.
    ///
    /// Scored methods return their `target_edges` highest scoring edges;
    /// parameter-free methods return their fixed backbone regardless of
    /// `target_edges` (matching how the paper compares them). Routed through
    /// the shared [`Pipeline`], so the reproduction experiments and the
    /// `backbone` CLI exercise the same code.
    pub fn edge_set<G: GraphView>(
        &self,
        graph: &G,
        target_edges: usize,
    ) -> BackboneResult<Vec<usize>> {
        self.edge_set_with_threads(graph, target_edges, 0)
    }

    /// [`Method::edge_set`] with an explicit worker count (`0` = automatic).
    pub fn edge_set_with_threads<G: GraphView>(
        &self,
        graph: &G,
        target_edges: usize,
        threads: usize,
    ) -> BackboneResult<Vec<usize>> {
        Pipeline::new(*self, ThresholdPolicy::TopK(target_edges))
            .with_threads(threads)
            .edge_set(graph)
    }

    /// The method's backbone graph at a target edge count (see [`Method::edge_set`]).
    pub fn backbone<G: GraphView>(
        &self,
        graph: &G,
        target_edges: usize,
    ) -> BackboneResult<WeightedGraph> {
        Ok(graph.subgraph_with_edges(&self.edge_set(graph, target_edges)?)?)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.cli_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::generators::complete_graph;

    #[test]
    fn registry_covers_the_methods() {
        assert_eq!(Method::all().len(), 6);
        assert_eq!(Method::every().len(), 7);
        assert_eq!(Method::scalable().len(), 5);
        let names: Vec<&str> = Method::all().iter().map(|m| m.short_name()).collect();
        assert_eq!(names, vec!["NT", "MST", "DS", "HSS", "DF", "NC"]);
        // hss-approx is scalable but deliberately not part of `every()`.
        assert!(Method::scalable().contains(&Method::hss_approx_default()));
        assert!(!Method::every()
            .iter()
            .any(|m| matches!(m, Method::HssApprox { .. })));
        for method in Method::every() {
            assert!(!method.full_name().is_empty());
        }
    }

    #[test]
    fn hss_approx_parses_and_keys_its_parameters() {
        assert_eq!(
            Method::parse("hss-approx"),
            Some(Method::hss_approx_default())
        );
        assert_eq!(Method::parse("HSSA"), Some(Method::hss_approx_default()));
        let custom = Method::HssApprox { roots: 64, seed: 7 };
        assert_eq!(custom.cli_name(), "hss-approx");
        assert_eq!(custom.cache_key(), "hss-approx:roots=64:seed=7");
        // Exact methods key by their CLI name; different parameterizations of
        // hss-approx never collide.
        assert_eq!(Method::NoiseCorrected.cache_key(), "nc");
        assert_ne!(custom.cache_key(), Method::hss_approx_default().cache_key());
    }

    #[test]
    fn hss_approx_scores_deterministically() {
        let graph = complete_graph(12, 2.0).unwrap();
        let method = Method::HssApprox { roots: 4, seed: 9 };
        let scored = method.score(&graph).unwrap();
        assert_eq!(scored.len(), graph.edge_count());
        assert_eq!(scored.method(), method.score_name());
        let again = method.score(&graph).unwrap();
        for (a, b) in scored.iter().zip(again.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn parse_round_trips_every_name() {
        for method in Method::every() {
            assert_eq!(Method::parse(method.cli_name()), Some(method));
            assert_eq!(Method::parse(method.short_name()), Some(method));
        }
        assert_eq!(
            Method::parse("Noise-Corrected"),
            Some(Method::NoiseCorrected)
        );
        assert_eq!(Method::parse("DISPARITY"), Some(Method::DisparityFilter));
        assert_eq!(Method::parse("bogus"), None);
    }

    #[test]
    fn parameter_free_flags() {
        assert!(Method::MaximumSpanningTree.is_parameter_free());
        assert!(Method::DoublyStochastic.is_parameter_free());
        assert!(!Method::NoiseCorrected.is_parameter_free());
        assert!(!Method::DisparityFilter.is_parameter_free());
        assert!(!Method::NoiseCorrectedBinomial.is_parameter_free());
        assert!(!Method::hss_approx_default().is_parameter_free());
    }

    #[test]
    fn every_method_scores_a_dense_graph() {
        let graph = complete_graph(12, 2.0).unwrap();
        for method in Method::every() {
            let scored = method.score(&graph).unwrap();
            assert_eq!(scored.len(), graph.edge_count(), "{}", method.short_name());
            assert_eq!(scored.method(), method.score_name());
        }
    }

    #[test]
    fn edge_sets_respect_target_for_scored_methods() {
        let graph = complete_graph(10, 2.0).unwrap();
        for method in [
            Method::NaiveThreshold,
            Method::DisparityFilter,
            Method::NoiseCorrected,
            Method::NoiseCorrectedBinomial,
        ] {
            let edges = method.edge_set(&graph, 7).unwrap();
            assert_eq!(edges.len(), 7, "{}", method.short_name());
        }
        // MST ignores the target and returns n − 1 edges.
        let mst = Method::MaximumSpanningTree.edge_set(&graph, 7).unwrap();
        assert_eq!(mst.len(), 9);
    }

    #[test]
    fn backbone_preserves_node_count() {
        let graph = complete_graph(8, 1.0).unwrap();
        for method in Method::every() {
            let backbone = method.backbone(&graph, 10).unwrap();
            assert_eq!(backbone.node_count(), 8, "{}", method.short_name());
        }
    }
}
