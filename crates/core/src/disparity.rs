//! The Disparity Filter (Serrano, Boguñá & Vespignani, 2009).
//!
//! The Disparity Filter is the statistical state of the art the paper compares
//! against. For each node, the weights of its `k` incident edges are expressed
//! as shares `p_ij = w_ij / s_i` of the node's total strength and compared to
//! a null model in which the unit interval is split by `k − 1` uniform random
//! points. The probability that a share at least as large as `p_ij` arises
//! under this null model is
//!
//! ```text
//! α_ij = (1 − p_ij)^(k_i − 1)
//! ```
//!
//! which acts as a p-value: small `α_ij` means the edge carries a
//! significantly larger share of the node's weight than expected.
//!
//! Every edge is tested from both of its endpoints (as emitter and as
//! receiver) and the most favourable (smallest) p-value is kept — the
//! behaviour of the reference implementation. Crucially, and unlike the
//! Noise-Corrected backbone, the null model never considers the *pair* of
//! endpoints jointly, which is why the Disparity Filter keeps periphery–hub
//! connections that the NC backbone prunes (paper, Figure 3).

use backboning_graph::{EdgeRef, GraphView, WeightedGraph};
use backboning_parallel::{clamped_threads, par_map};

use crate::error::BackboneResult;
use crate::scored::{BackboneExtractor, ScoredEdge, ScoredEdges, Symmetrization};
use crate::totals::NetworkTotals;

/// The Disparity Filter backbone extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisparityFilter {
    /// How the two directional p-values of an edge are combined. The default
    /// ([`Symmetrization::Max`] on scores, i.e. the *smaller* p-value wins)
    /// matches the reference implementation: an edge is kept if it is
    /// significant for either endpoint.
    pub symmetrization: Symmetrization,
}

impl Default for DisparityFilter {
    fn default() -> Self {
        DisparityFilter {
            symmetrization: Symmetrization::Max,
        }
    }
}

impl DisparityFilter {
    /// Create the extractor with the default (either-endpoint) symmetrization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the extractor with a specific symmetrization rule.
    pub fn with_symmetrization(symmetrization: Symmetrization) -> Self {
        DisparityFilter { symmetrization }
    }

    /// The Disparity Filter p-value of one edge seen from one node:
    /// probability of a weight share at least `share` among `degree` edges
    /// under the uniform-splitting null model.
    fn alpha(share: f64, degree: usize) -> f64 {
        if degree <= 1 {
            // A node with a single edge can never reject the null model.
            return 1.0;
        }
        let share = share.clamp(0.0, 1.0);
        (1.0 - share).powi(degree as i32 - 1)
    }

    /// Score every edge with an explicit worker count (`0` = automatic,
    /// honoring `BACKBONING_THREADS`). Each edge's p-value depends only on the
    /// precomputed per-node strengths and degrees, so the result is
    /// bit-identical for every thread count.
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        // Per-node strengths and degrees for both roles (emitter / receiver),
        // built in one pass over the edge list.
        let totals = NetworkTotals::compute(graph);
        let out_degree: Vec<usize> = graph.nodes().map(|n| graph.out_degree(n)).collect();
        let in_degree: Vec<usize> = graph.nodes().map(|n| graph.in_degree(n)).collect();

        let edges: Vec<EdgeRef> = graph.edges().collect();
        let scored = par_map(
            &edges,
            clamped_threads(threads, edges.len(), 2048),
            |_, edge| {
                score_edge(
                    self.symmetrization,
                    edge.index,
                    edge.source,
                    edge.target,
                    edge.weight,
                    totals.out_strength[edge.source],
                    out_degree[edge.source],
                    totals.in_strength[edge.target],
                    in_degree[edge.target],
                )
            },
        );
        Ok(ScoredEdges::new(
            BackboneExtractor::name(self),
            graph.node_count(),
            scored,
        ))
    }
}

/// The Disparity Filter score of one edge from its endpoint strengths and
/// degrees — the single source of truth shared by the batch scorer above and
/// the incremental rescoring path in [`crate::delta`], so both produce
/// bit-identical results.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_edge(
    symmetrization: Symmetrization,
    edge_index: usize,
    source: usize,
    target: usize,
    weight: f64,
    source_strength: f64,
    source_degree: usize,
    target_strength: f64,
    target_degree: usize,
) -> ScoredEdge {
    // Emitter perspective: the edge as a share of the source's outgoing weight.
    let source_alpha = if source_strength > 0.0 {
        DisparityFilter::alpha(weight / source_strength, source_degree)
    } else {
        1.0
    };
    // Receiver perspective: the edge as a share of the target's incoming weight.
    let target_alpha = if target_strength > 0.0 {
        DisparityFilter::alpha(weight / target_strength, target_degree)
    } else {
        1.0
    };

    // Combine the two perspectives on the *score* scale (1 − α), so that
    // Max keeps the most significant perspective.
    let score = symmetrization.combine(1.0 - source_alpha, 1.0 - target_alpha);
    let p_value = 1.0 - score;

    ScoredEdge {
        edge_index,
        source,
        target,
        weight,
        score,
        raw_score: None,
        std_dev: None,
        p_value: Some(p_value),
    }
}

impl BackboneExtractor for DisparityFilter {
    fn name(&self) -> &'static str {
        "disparity_filter"
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise_corrected::NoiseCorrected;
    use backboning_graph::{Direction, GraphBuilder, WeightedGraph};

    /// The Figure 3 toy graph: hub 0 with five spokes, plus a peripheral edge 1–2.
    fn figure3_toy() -> WeightedGraph {
        GraphBuilder::undirected()
            .indexed_edge(0, 1, 20.0)
            .indexed_edge(0, 2, 20.0)
            .indexed_edge(0, 3, 20.0)
            .indexed_edge(0, 4, 20.0)
            .indexed_edge(0, 5, 20.0)
            .indexed_edge(1, 2, 10.0)
            .build()
            .unwrap()
    }

    #[test]
    fn alpha_formula_matches_hand_computation() {
        // Node with 3 edges, one carrying 60% of the strength:
        // α = (1 − 0.6)² = 0.16.
        assert!((DisparityFilter::alpha(0.6, 3) - 0.16).abs() < 1e-12);
        // Degree-1 nodes can never be significant.
        assert_eq!(DisparityFilter::alpha(0.9, 1), 1.0);
        // Full share with degree ≥ 2 is maximally significant.
        assert_eq!(DisparityFilter::alpha(1.0, 4), 0.0);
    }

    #[test]
    fn dominant_edge_is_most_significant() {
        // A node with one dominant edge and several tiny ones.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 100.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(0, 3, 1.0)
            .indexed_edge(0, 4, 1.0)
            .indexed_edge(1, 5, 50.0)
            .indexed_edge(2, 5, 1.0)
            .build()
            .unwrap();
        let scored = DisparityFilter::new().score(&graph).unwrap();
        let dominant = scored.get(graph.edge_index(0, 1).unwrap()).unwrap();
        let tiny = scored.get(graph.edge_index(0, 2).unwrap()).unwrap();
        assert!(dominant.score > tiny.score);
        assert!(dominant.p_value.unwrap() < tiny.p_value.unwrap());
    }

    #[test]
    fn p_values_are_probabilities() {
        let scored = DisparityFilter::new().score(&figure3_toy()).unwrap();
        for edge in scored.iter() {
            let p = edge.p_value.unwrap();
            assert!((0.0..=1.0).contains(&p), "p-value {p} out of range");
            assert!((edge.score - (1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    fn hub_spokes_survive_under_disparity_but_not_under_nc() {
        // The paper's Figure 3 contrast. The edges from the hub to nodes 1 and
        // 2 (the connected peripheral pair) are the blue dashed edges of the
        // figure: the Disparity Filter keeps them — from nodes 1 and 2's
        // perspective they carry two thirds of the node strength — while the
        // Noise-Corrected backbone ranks them *below* the peripheral edge 1–2,
        // because connecting to the hub is exactly what the null model expects.
        let graph = figure3_toy();

        let df = DisparityFilter::new().score(&graph).unwrap();
        let nc = NoiseCorrected::default().score(&graph).unwrap();

        let peripheral = graph.edge_index(1, 2).unwrap();
        let hub_to_pair = graph.edge_index(0, 1).unwrap();

        // Disparity Filter: the hub spoke is at least as significant as the
        // peripheral edge (it survives).
        assert!(df.get(hub_to_pair).unwrap().score >= df.get(peripheral).unwrap().score);
        // Noise-Corrected: the ordering flips.
        assert!(nc.get(hub_to_pair).unwrap().score < nc.get(peripheral).unwrap().score);
    }

    #[test]
    fn directed_graph_uses_both_roles() {
        // Source 0 spreads evenly (no significance from its side), but target 3
        // receives almost everything from node 0 → receiver side is significant.
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 5);
        graph.add_edge(0, 1, 10.0).unwrap();
        graph.add_edge(0, 2, 10.0).unwrap();
        graph.add_edge(0, 3, 10.0).unwrap();
        graph.add_edge(1, 3, 0.1).unwrap();
        graph.add_edge(2, 3, 0.1).unwrap();
        graph.add_edge(4, 1, 5.0).unwrap();

        let either = DisparityFilter::new().score(&graph).unwrap();
        let both = DisparityFilter::with_symmetrization(Symmetrization::Min)
            .score(&graph)
            .unwrap();
        let edge = graph.edge_index(0, 3).unwrap();
        // Requiring significance from both perspectives can only lower the score.
        assert!(both.get(edge).unwrap().score <= either.get(edge).unwrap().score);
    }

    #[test]
    fn uniform_star_has_no_significant_edges() {
        // A hub spreading its weight perfectly evenly: no edge stands out.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 5.0)
            .indexed_edge(0, 2, 5.0)
            .indexed_edge(0, 3, 5.0)
            .indexed_edge(0, 4, 5.0)
            .build()
            .unwrap();
        let scored = DisparityFilter::new().score(&graph).unwrap();
        for edge in scored.iter() {
            // α = (1 − 1/4)³ ≈ 0.42 from the hub side, 1.0 from the leaves.
            assert!(edge.p_value.unwrap() > 0.4);
        }
    }

    #[test]
    fn thresholding_reduces_edges_monotonically() {
        let graph = figure3_toy();
        let scored = DisparityFilter::new().score(&graph).unwrap();
        let relaxed = scored.filter(0.0).len();
        let moderate = scored.filter(0.5).len();
        let strict = scored.filter(0.95).len();
        assert!(relaxed >= moderate && moderate >= strict);
    }

    #[test]
    fn empty_graph_is_handled() {
        let empty = WeightedGraph::undirected();
        let scored = DisparityFilter::new().score(&empty).unwrap();
        assert!(scored.is_empty());
        assert_eq!(scored.method(), "disparity_filter");
    }
}
