//! Error types for the backboning algorithms.

use std::fmt;

use backboning_graph::GraphError;
use backboning_stats::StatsError;

/// Errors produced by backbone extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum BackboneError {
    /// The input graph cannot be processed by this method.
    UnsupportedGraph {
        /// Name of the method that rejected the graph.
        method: &'static str,
        /// Why the graph is unsupported.
        message: String,
    },
    /// A parameter was outside its admissible range.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// An underlying statistical routine failed.
    Stats(StatsError),
}

impl fmt::Display for BackboneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackboneError::UnsupportedGraph { method, message } => {
                write!(f, "{method} cannot process this graph: {message}")
            }
            BackboneError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            BackboneError::Graph(err) => write!(f, "graph error: {err}"),
            BackboneError::Stats(err) => write!(f, "statistics error: {err}"),
        }
    }
}

impl std::error::Error for BackboneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackboneError::Graph(err) => Some(err),
            BackboneError::Stats(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for BackboneError {
    fn from(err: GraphError) -> Self {
        BackboneError::Graph(err)
    }
}

impl From<StatsError> for BackboneError {
    fn from(err: StatsError) -> Self {
        BackboneError::Stats(err)
    }
}

/// Convenience result alias for backbone extraction.
pub type BackboneResult<T> = Result<T, BackboneError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_from_substrate_errors() {
        let graph_err = GraphError::InvalidWeight { weight: -1.0 };
        let converted: BackboneError = graph_err.into();
        assert!(matches!(converted, BackboneError::Graph(_)));
        assert!(converted.to_string().contains("graph error"));

        let stats_err = StatsError::EmptyInput { operation: "mean" };
        let converted: BackboneError = stats_err.into();
        assert!(matches!(converted, BackboneError::Stats(_)));
    }

    #[test]
    fn display_unsupported_graph() {
        let err = BackboneError::UnsupportedGraph {
            method: "doubly_stochastic",
            message: "zero column".to_string(),
        };
        assert!(err.to_string().contains("doubly_stochastic"));
        assert!(err.to_string().contains("zero column"));
    }

    #[test]
    fn error_source_is_exposed() {
        use std::error::Error;
        let err: BackboneError = GraphError::InvalidWeight { weight: -2.0 }.into();
        assert!(err.source().is_some());
        let err = BackboneError::InvalidParameter {
            parameter: "delta",
            message: "must be positive".to_string(),
        };
        assert!(err.source().is_none());
    }
}
