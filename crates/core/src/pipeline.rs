//! The end-to-end backboning pipeline shared by the `backbone` CLI and the
//! reproduction experiments.
//!
//! A [`Pipeline`] bundles the three decisions of a backboning run — which
//! [`Method`] scores the edges, which [`ThresholdPolicy`] decides how many of
//! them survive, and how many worker threads do the scoring — behind one
//! `run` call that produces a [`PipelineRun`]: the scored edges, the kept
//! edge set, the backbone graph, and the run statistics (coverage, wall
//! time). The same type drives the paper's evaluation sweeps (via
//! [`Method::edge_set`]) and user-supplied networks (via the `backbone`
//! binary in `crates/cli`), so the reproduction path and the serving path are
//! the same code.
//!
//! ```
//! use backboning::{Pipeline, Method, ThresholdPolicy};
//! use backboning_graph::io::{read_edge_list_str, EdgeListOptions};
//! use backboning_graph::Direction;
//!
//! let text = "hub a 10\nhub b 10\nhub c 12\nhub d 11\na b 6\n";
//! let options = EdgeListOptions::with_direction(Direction::Undirected);
//! let graph = read_edge_list_str(text, &options).unwrap();
//!
//! let run = Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::TopShare(0.6))
//!     .run(&graph)
//!     .unwrap();
//! assert_eq!(run.kept.len(), 3);
//! assert_eq!(run.backbone.node_count(), graph.node_count());
//! assert!(run.summary_json().contains("\"method\": \"nc\""));
//! ```

use std::collections::HashSet;
use std::io::{BufWriter, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use backboning_graph::io::write_edge_list;
use backboning_graph::{GraphView, WeightedGraph};

use crate::error::{BackboneError, BackboneResult};
use crate::json;
use crate::method::Method;
use crate::scored::ScoredEdges;

/// How the scored edges are pruned into a backbone.
///
/// Every policy selects by the method's significance score (see the table in
/// [`crate::scored`]); they differ in how the cut-off is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Keep edges whose score is at least this value (the method's natural
    /// significance parameter, e.g. the Noise-Corrected `δ`).
    Score(f64),
    /// Keep the `k` highest scoring edges (ties broken deterministically, see
    /// [`ScoredEdges::top_k`]).
    TopK(usize),
    /// Keep the top share (in `[0, 1]`) of edges by score.
    TopShare(f64),
    /// Keep the smallest score-ranked prefix of edges whose node coverage —
    /// the share of originally non-isolated nodes with at least one backbone
    /// edge — reaches the target (in `[0, 1]`).
    Coverage(f64),
}

impl ThresholdPolicy {
    /// The lowercase identifier used by the `backbone` CLI and the JSON run
    /// summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            ThresholdPolicy::Score(_) => "score",
            ThresholdPolicy::TopK(_) => "top_k",
            ThresholdPolicy::TopShare(_) => "top_share",
            ThresholdPolicy::Coverage(_) => "coverage",
        }
    }

    /// The policy's parameter as a number (for reports and JSON summaries).
    pub fn value(&self) -> f64 {
        match self {
            ThresholdPolicy::Score(s) => *s,
            ThresholdPolicy::TopK(k) => *k as f64,
            ThresholdPolicy::TopShare(s) => *s,
            ThresholdPolicy::Coverage(c) => *c,
        }
    }
}

impl std::fmt::Display for ThresholdPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThresholdPolicy::Score(s) => write!(f, "score ≥ {s}"),
            ThresholdPolicy::TopK(k) => write!(f, "top {k} edges"),
            ThresholdPolicy::TopShare(s) => write!(f, "top {s} of edges"),
            ThresholdPolicy::Coverage(c) => write!(f, "coverage ≥ {c}"),
        }
    }
}

/// A configured backboning run: method × threshold policy × worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    method: Method,
    policy: ThresholdPolicy,
    threads: usize,
}

/// The number of edges a matched-coverage comparison keeps: `round(share ×
/// edge_count)` — the same round-half-up rule as [`ScoredEdges::top_share`],
/// so a matched [`Pipeline`] and a `TopShare` pipeline at the same share keep
/// identical edge sets. Rejects shares outside `[0, 1]`.
///
/// ```
/// use backboning::pipeline::matched_edge_count;
/// assert_eq!(matched_edge_count(28, 0.1).unwrap(), 3);
/// assert_eq!(matched_edge_count(5, 0.5).unwrap(), 3);
/// assert!(matched_edge_count(10, 1.2).is_err());
/// ```
pub fn matched_edge_count(edge_count: usize, share: f64) -> BackboneResult<usize> {
    if !(0.0..=1.0).contains(&share) {
        return Err(BackboneError::InvalidParameter {
            parameter: "top_share",
            message: format!("must lie in [0, 1], got {share}"),
        });
    }
    Ok((share * edge_count as f64).round() as usize)
}

impl Pipeline {
    /// A pipeline with automatic thread count (honours `BACKBONING_THREADS`).
    pub fn new(method: Method, policy: ThresholdPolicy) -> Self {
        Pipeline {
            method,
            policy,
            threads: 0,
        }
    }

    /// The matched-coverage pipeline of the paper's evaluation methodology
    /// (Section V): every method is asked for the **same number of edges** —
    /// [`matched_edge_count`] of `graph`'s edges at `top_share` — so that
    /// coverage, connectivity and stability are compared at equal backbone
    /// size rather than at each method's natural threshold. Parameter-free
    /// methods (MST, DS) still return their fixed edge set, which is exactly
    /// how the paper places them on the same axes.
    pub fn matched<G: GraphView>(
        method: Method,
        graph: &G,
        top_share: f64,
    ) -> BackboneResult<Pipeline> {
        let target = matched_edge_count(graph.edge_count(), top_share)?;
        Ok(Pipeline::new(method, ThresholdPolicy::TopK(target)))
    }

    /// Set an explicit worker count (`0` = automatic). Results are
    /// bit-identical at any thread count — parallelism only changes the wall
    /// time (see `backboning_parallel`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The configured threshold policy.
    pub fn policy(&self) -> ThresholdPolicy {
        self.policy
    }

    /// The configured worker count (`0` = automatic).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Stage 1: score every edge of the graph with the configured method.
    pub fn score<G: GraphView>(&self, graph: &G) -> BackboneResult<ScoredEdges> {
        self.method.score_with_threads(graph, self.threads)
    }

    /// Stage 2: apply the threshold policy to a scored edge set, returning the
    /// kept edge indices.
    ///
    /// For the parameter-free methods (MST, DS) the size-targeting policies
    /// (`TopK`, `TopShare`, `Coverage`) return the method's fixed backbone
    /// regardless of the requested size — their backbone is a single edge set,
    /// which is how the paper compares them. The fixed set is derived from the
    /// already-computed scores, so the expensive scoring pass never runs
    /// twice. The `Score` policy always thresholds the scores directly.
    pub fn select<G: GraphView>(
        &self,
        graph: &G,
        scored: &ScoredEdges,
    ) -> BackboneResult<Vec<usize>> {
        if !matches!(self.policy, ThresholdPolicy::Score(_)) {
            if let Some(fixed) = self.method.fixed_edge_set_from_scores(graph, scored) {
                return Ok(fixed);
            }
        }
        match self.policy {
            ThresholdPolicy::Score(threshold) => Ok(scored.filter(threshold)),
            ThresholdPolicy::TopK(k) => Ok(scored.top_k(k)),
            ThresholdPolicy::TopShare(share) => scored.top_share(share),
            ThresholdPolicy::Coverage(target) => coverage_prefix(graph, scored, target),
        }
    }

    /// Score and select in one call, returning the kept edge indices.
    pub fn edge_set<G: GraphView>(&self, graph: &G) -> BackboneResult<Vec<usize>> {
        let scored = self.score(graph)?;
        self.select(graph, &scored)
    }

    /// Run the full pipeline: score, select, and build the backbone graph,
    /// measuring wall time, per-stage time and coverage along the way.
    pub fn run<G: GraphView>(&self, graph: &G) -> BackboneResult<PipelineRun> {
        let start = Instant::now();
        let scored = Arc::new(self.score(graph)?);
        self.assemble(graph, scored, start, Some(start.elapsed()))
    }

    /// Run everything *after* scoring on an already-scored edge set: apply
    /// the threshold policy, build the backbone graph, and assemble a full
    /// [`PipelineRun`] — without recomputing the scores.
    ///
    /// This is the score-once-select-many entry point: score a graph once
    /// (via [`Pipeline::score`] or a cache of [`ScoredEdges`]) and sweep any
    /// number of threshold policies over the shared scores at selection
    /// cost only — the `Arc` makes the hot path allocation-free even for
    /// multi-million-edge score sets. The resulting run is identical to a
    /// fresh [`Pipeline::run`] with the same method and policy — same kept
    /// set, same backbone, same summary — except for the measured wall
    /// time, which here covers only selection and backbone construction.
    /// The `backboning_server` scored-graph cache serves every threshold
    /// query after the first through this path.
    ///
    /// The scores must actually belong to this pipeline's method and to
    /// `graph` (same node and edge counts); mismatches — scores produced by
    /// another method, or for another graph — are rejected instead of
    /// silently producing a wrong backbone.
    pub fn run_with_scores<G: GraphView>(
        &self,
        graph: &G,
        scored: Arc<ScoredEdges>,
    ) -> BackboneResult<PipelineRun> {
        let expected = self.method.score_name();
        if scored.method() != expected {
            return Err(BackboneError::InvalidParameter {
                parameter: "scored",
                message: format!(
                    "scores were produced by `{}`, but this pipeline runs `{expected}`",
                    scored.method()
                ),
            });
        }
        if scored.node_count() != graph.node_count() || scored.len() != graph.edge_count() {
            return Err(BackboneError::InvalidParameter {
                parameter: "scored",
                message: format!(
                    "scores cover a {}-node / {}-edge graph, but this graph has {} nodes / {} edges",
                    scored.node_count(),
                    scored.len(),
                    graph.node_count(),
                    graph.edge_count()
                ),
            });
        }
        self.assemble(graph, scored, Instant::now(), None)
    }

    /// Select, build the backbone, and package the run statistics. `start`
    /// is when the caller's measured work began (before scoring for `run`,
    /// after it for `run_with_scores`); `score` is the already-measured
    /// scoring time, `None` when the scores were supplied by the caller.
    fn assemble<G: GraphView>(
        &self,
        graph: &G,
        scored: Arc<ScoredEdges>,
        start: Instant,
        score: Option<Duration>,
    ) -> BackboneResult<PipelineRun> {
        let select_start = Instant::now();
        let kept = self.select(graph, &scored)?;
        let select = select_start.elapsed();
        let build_start = Instant::now();
        let backbone = graph.subgraph_with_edges(&kept)?;
        let build = build_start.elapsed();
        let elapsed = start.elapsed();
        let original_connected = graph.non_isolated_node_count();
        let coverage = if original_connected == 0 {
            1.0
        } else {
            backbone.non_isolated_node_count() as f64 / original_connected as f64
        };
        Ok(PipelineRun {
            method: self.method,
            policy: self.policy,
            threads: backboning_parallel::resolve_threads(self.threads),
            original_nodes: graph.node_count(),
            original_edges: graph.edge_count(),
            coverage,
            elapsed,
            stages: StageTimings {
                score,
                select,
                build,
            },
            scored,
            kept,
            backbone,
        })
    }
}

/// Per-stage wall times of one pipeline run, as measured by
/// [`Pipeline::run`] / [`Pipeline::run_with_scores`].
///
/// The stages are the three calls the pipeline makes: [`Pipeline::score`],
/// [`Pipeline::select`], and the backbone subgraph construction. Their sum
/// is slightly below [`PipelineRun::elapsed`] (the difference is the
/// bookkeeping between stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Time spent scoring the edges; `None` when the run reused
    /// already-computed scores ([`Pipeline::run_with_scores`]).
    pub score: Option<Duration>,
    /// Time spent applying the threshold policy to the scored edges.
    pub select: Duration,
    /// Time spent building the backbone subgraph from the kept edges.
    pub build: Duration,
}

/// The smallest score-ranked prefix of edges whose node coverage reaches
/// `target`, in ranking order.
fn coverage_prefix<G: GraphView>(
    graph: &G,
    scored: &ScoredEdges,
    target: f64,
) -> BackboneResult<Vec<usize>> {
    if !(0.0..=1.0).contains(&target) {
        return Err(BackboneError::InvalidParameter {
            parameter: "coverage",
            message: format!("must lie in [0, 1], got {target}"),
        });
    }
    let original_connected = graph.non_isolated_node_count();
    if target == 0.0 || original_connected == 0 {
        return Ok(Vec::new());
    }
    let order = scored.top_k(scored.len());
    let mut covered = vec![false; graph.node_count()];
    let mut covered_count = 0usize;
    let mut kept = Vec::new();
    for edge_index in order {
        let edge = graph.edge(edge_index).expect("scored edge index in range");
        kept.push(edge_index);
        for node in [edge.source, edge.target] {
            if !covered[node] {
                covered[node] = true;
                covered_count += 1;
            }
        }
        if covered_count as f64 / original_connected as f64 >= target - 1e-12 {
            return Ok(kept);
        }
    }
    // The full edge set covers every non-isolated node, so this is only
    // reachable through floating-point slack; keep everything.
    Ok(kept)
}

/// The result of one [`Pipeline::run`]: scores, kept edges, backbone graph
/// and run statistics.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The method that scored the edges.
    pub method: Method,
    /// The policy that pruned them.
    pub policy: ThresholdPolicy,
    /// The resolved worker count that did the scoring.
    pub threads: usize,
    /// Node count of the input graph.
    pub original_nodes: usize,
    /// Edge count of the input graph.
    pub original_edges: usize,
    /// Node coverage of the backbone (share of originally non-isolated nodes
    /// keeping at least one edge).
    pub coverage: f64,
    /// Wall time of scoring + selection + backbone construction.
    pub elapsed: Duration,
    /// Per-stage breakdown of `elapsed` (score / select / build).
    pub stages: StageTimings,
    /// Every edge with its method-specific significance score (shared, so a
    /// cached selection never copies the score vector).
    pub scored: Arc<ScoredEdges>,
    /// Indices (into the input graph) of the kept edges.
    pub kept: Vec<usize>,
    /// The backbone graph (full node set, kept edges only).
    pub backbone: WeightedGraph,
}

impl PipelineRun {
    /// Share of original edges kept in the backbone.
    pub fn edge_share(&self) -> f64 {
        if self.original_edges == 0 {
            1.0
        } else {
            self.kept.len() as f64 / self.original_edges as f64
        }
    }

    /// Write the backbone as a tab-separated edge list
    /// (`source<TAB>target<TAB>weight`, one header comment line).
    pub fn write_backbone<W: Write>(&self, writer: W) -> BackboneResult<()> {
        Ok(write_edge_list(&self.backbone, writer)?)
    }

    /// Write the full scored-edge table as tab-separated text: one row per
    /// original edge with its weight, significance score, the method-specific
    /// optional columns (raw score, standard deviation, p-value; `NA` when
    /// the method does not define them) and whether the edge was kept.
    pub fn write_scores<W: Write>(&self, writer: W) -> BackboneResult<()> {
        let mut writer = BufWriter::new(writer);
        let kept: HashSet<usize> = self.kept.iter().copied().collect();
        let fmt_opt = |value: Option<f64>| match value {
            Some(v) => format!("{v}"),
            None => "NA".to_string(),
        };
        let io_err = |e: std::io::Error| backboning_graph::GraphError::from(e);
        writeln!(
            writer,
            "# source\ttarget\tweight\tscore\traw_score\tstd_dev\tp_value\tkept"
        )
        .map_err(io_err)?;
        for edge in self.scored.iter() {
            let label = |node| {
                self.backbone
                    .label(node)
                    .map(str::to_string)
                    .unwrap_or_else(|| node.to_string())
            };
            writeln!(
                writer,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                label(edge.source),
                label(edge.target),
                edge.weight,
                edge.score,
                fmt_opt(edge.raw_score),
                fmt_opt(edge.std_dev),
                fmt_opt(edge.p_value),
                u8::from(kept.contains(&edge.edge_index)),
            )
            .map_err(io_err)?;
        }
        writer.flush().map_err(io_err)?;
        Ok(())
    }

    /// The run summary as a JSON object: method, policy, thread count,
    /// input/backbone sizes, coverage, wall time and the per-stage
    /// `stage_ms` breakdown (the `score` entry is omitted when the run
    /// reused cached scores).
    pub fn summary_json(&self) -> String {
        self.summary(true)
    }

    /// [`PipelineRun::summary_json`] without the `wall_ms` and `stage_ms`
    /// fields.
    ///
    /// Wall time is the one run statistic that is not a pure function of the
    /// input; omitting it makes the summary *stable*: two runs with the same
    /// graph, method and policy produce byte-identical summaries. The HTTP
    /// server responds with this form so a cache-hit answer is exactly the
    /// bytes of the cold one.
    pub fn summary_json_stable(&self) -> String {
        self.summary(false)
    }

    fn summary(&self, include_timing: bool) -> String {
        let mut policy = json::JsonObject::inline();
        policy
            .string("kind", self.policy.kind())
            .f64("value", self.policy.value());
        let mut input = json::JsonObject::inline();
        input
            .usize("nodes", self.original_nodes)
            .usize("edges", self.original_edges);
        let mut backbone = json::JsonObject::inline();
        backbone
            .usize("nodes_covered", self.backbone.non_isolated_node_count())
            .usize("edges", self.kept.len())
            .f64_fixed("edge_share", self.edge_share(), 6)
            .f64_fixed("coverage", self.coverage, 6);
        let mut summary = json::JsonObject::pretty();
        summary.string("method", self.method.cli_name());
        // `hss-approx` is parameterized, and the summary must pin the run
        // down completely — emit the sample parameters right after the name.
        if let Method::HssApprox { roots, seed } = self.method {
            let mut params = json::JsonObject::inline();
            params.usize("hss_roots", roots).u64("hss_seed", seed);
            summary.raw("method_params", &params.finish());
        }
        summary
            .raw("policy", &policy.finish())
            .usize("threads", self.threads)
            .raw("input", &input.finish())
            .raw("backbone", &backbone.finish());
        if include_timing {
            summary.f64_fixed("wall_ms", self.elapsed.as_secs_f64() * 1e3, 3);
            let mut stages = json::JsonObject::inline();
            if let Some(score) = self.stages.score {
                stages.f64_fixed("score", score.as_secs_f64() * 1e3, 3);
            }
            stages
                .f64_fixed("select", self.stages.select.as_secs_f64() * 1e3, 3)
                .f64_fixed("build", self.stages.build.as_secs_f64() * 1e3, 3);
            summary.raw("stage_ms", &stages.finish());
        }
        summary.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::generators::complete_graph;
    use backboning_graph::{Direction, WeightedGraph};

    fn path_graph() -> WeightedGraph {
        WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![
                ("a", "b", 4.0),
                ("b", "c", 3.0),
                ("c", "d", 2.0),
                ("d", "e", 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn top_k_policy_keeps_exactly_k_edges() {
        let graph = path_graph();
        let run = Pipeline::new(Method::NaiveThreshold, ThresholdPolicy::TopK(2))
            .run(&graph)
            .unwrap();
        assert_eq!(run.kept, vec![0, 1]);
        assert_eq!(run.backbone.edge_count(), 2);
        assert_eq!(run.backbone.node_count(), graph.node_count());
    }

    #[test]
    fn score_policy_thresholds_directly() {
        let graph = path_graph();
        let run = Pipeline::new(Method::NaiveThreshold, ThresholdPolicy::Score(2.5))
            .run(&graph)
            .unwrap();
        // Naive scores are the raw weights: 4 and 3 survive.
        assert_eq!(run.kept, vec![0, 1]);
    }

    #[test]
    fn coverage_policy_stops_at_the_target() {
        let graph = path_graph();
        // 5 non-isolated nodes; the two heaviest edges cover a, b, c: 3/5.
        let run = Pipeline::new(Method::NaiveThreshold, ThresholdPolicy::Coverage(0.6))
            .run(&graph)
            .unwrap();
        assert_eq!(run.kept, vec![0, 1]);
        assert!((run.coverage - 0.6).abs() < 1e-12);

        let full = Pipeline::new(Method::NaiveThreshold, ThresholdPolicy::Coverage(1.0))
            .run(&graph)
            .unwrap();
        assert_eq!(full.coverage, 1.0);

        let none = Pipeline::new(Method::NaiveThreshold, ThresholdPolicy::Coverage(0.0))
            .run(&graph)
            .unwrap();
        assert!(none.kept.is_empty());
    }

    #[test]
    fn coverage_policy_rejects_out_of_range_targets() {
        let graph = path_graph();
        for target in [-0.1, 1.5] {
            assert!(
                Pipeline::new(Method::NaiveThreshold, ThresholdPolicy::Coverage(target))
                    .run(&graph)
                    .is_err()
            );
        }
    }

    #[test]
    fn parameter_free_methods_ignore_size_policies() {
        let graph = complete_graph(8, 2.0).unwrap();
        let fixed = Method::MaximumSpanningTree
            .fixed_edge_set(&graph)
            .unwrap()
            .unwrap();
        for policy in [
            ThresholdPolicy::TopK(1),
            ThresholdPolicy::TopShare(0.1),
            ThresholdPolicy::Coverage(0.5),
        ] {
            let run = Pipeline::new(Method::MaximumSpanningTree, policy)
                .run(&graph)
                .unwrap();
            assert_eq!(run.kept, fixed, "{policy}");
        }
        // The score policy still thresholds MST's 0/1 scores directly.
        let scored = Pipeline::new(Method::MaximumSpanningTree, ThresholdPolicy::Score(0.5))
            .run(&graph)
            .unwrap();
        let mut sorted = scored.kept.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fixed);
    }

    #[test]
    fn run_summary_and_writers_are_consistent() {
        let graph = path_graph();
        let run = Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::TopShare(0.5))
            .with_threads(1)
            .run(&graph)
            .unwrap();
        assert_eq!(run.threads, 1);
        assert_eq!(run.kept.len(), 2);
        assert!((run.edge_share() - 0.5).abs() < 1e-12);

        let mut backbone_out = Vec::new();
        run.write_backbone(&mut backbone_out).unwrap();
        let text = String::from_utf8(backbone_out).unwrap();
        assert_eq!(text.lines().count(), 1 + run.kept.len());

        let mut scores_out = Vec::new();
        run.write_scores(&mut scores_out).unwrap();
        let table = String::from_utf8(scores_out).unwrap();
        assert_eq!(table.lines().count(), 1 + graph.edge_count());
        assert!(table.contains("a\tb"));

        let json = run.summary_json();
        assert!(json.contains("\"method\": \"nc\""));
        assert!(json.contains("\"kind\": \"top_share\""));
        assert!(json.contains("\"edges\": 4"));
        // Exact methods carry no parameter object.
        assert!(!json.contains("method_params"));
    }

    #[test]
    fn hss_approx_summary_pins_its_parameters() {
        let graph = path_graph();
        let run = Pipeline::new(
            Method::HssApprox { roots: 2, seed: 7 },
            ThresholdPolicy::TopShare(0.5),
        )
        .with_threads(1)
        .run(&graph)
        .unwrap();
        let json = run.summary_json();
        assert!(json.contains("\"method\": \"hss-approx\""));
        assert!(json.contains("\"method_params\": { \"hss_roots\": 2, \"hss_seed\": 7 }"));
        // The parameters are part of the stable summary too.
        assert!(run.summary_json_stable().contains("\"hss_roots\": 2"));
    }

    #[test]
    fn matched_pipeline_equals_top_share_selection() {
        let graph = complete_graph(9, 2.0).unwrap(); // 36 edges
        for share in [0.0, 0.1, 0.25, 1.0] {
            let matched = Pipeline::matched(Method::NoiseCorrected, &graph, share)
                .unwrap()
                .edge_set(&graph)
                .unwrap();
            let top_share = Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::TopShare(share))
                .edge_set(&graph)
                .unwrap();
            assert_eq!(matched, top_share, "share {share}");
            assert_eq!(matched.len(), matched_edge_count(36, share).unwrap());
        }
        for share in [-0.01, 1.01, f64::NAN] {
            assert!(Pipeline::matched(Method::NoiseCorrected, &graph, share).is_err());
        }
    }

    #[test]
    fn stage_timings_follow_the_run_entry_point() {
        let graph = path_graph();
        let pipeline = Pipeline::new(Method::NoiseCorrected, ThresholdPolicy::TopK(2));

        let full = pipeline.run(&graph).unwrap();
        assert!(full.stages.score.is_some());
        let json = full.summary_json();
        assert!(json.contains("\"stage_ms\": { \"score\": "));
        assert!(json.contains("\"select\": "));
        assert!(json.contains("\"build\": "));
        // The stable summary carries no timing at all.
        let stable = full.summary_json_stable();
        assert!(!stable.contains("stage_ms"));
        assert!(!stable.contains("wall_ms"));

        // Reusing scores drops the score stage from both the struct and the
        // summary, but keeps select/build.
        let cached = pipeline
            .run_with_scores(&graph, Arc::clone(&full.scored))
            .unwrap();
        assert_eq!(cached.stages.score, None);
        assert_eq!(cached.kept, full.kept);
        let cached_json = cached.summary_json();
        assert!(cached_json.contains("\"stage_ms\": { \"select\": "));
        assert!(!cached_json.contains("\"score\": "));
    }

    #[test]
    fn policy_display_and_metadata() {
        assert_eq!(ThresholdPolicy::TopK(5).kind(), "top_k");
        assert_eq!(ThresholdPolicy::TopK(5).value(), 5.0);
        assert_eq!(ThresholdPolicy::Score(1.28).to_string(), "score ≥ 1.28");
        assert_eq!(ThresholdPolicy::Coverage(0.9).kind(), "coverage");
    }
}
