//! Minimal JSON emission shared by the run summaries and the HTTP server.
//!
//! The build environment vendors no serialisation crate, so the workspace
//! hand-rolls its (small, write-only) JSON needs here: proper string
//! escaping, non-finite-float handling, and two composable builders —
//! [`JsonObject`] and [`JsonArray`] — with an *inline* single-line style for
//! nested values and a *pretty* two-space-indented style for top-level
//! documents. Both the CLI's `-o summary` output and every JSON response of
//! `backboning_server` are produced through this module, so the two surfaces
//! can never drift apart on escaping rules.
//!
//! ```
//! use backboning::json::{self, JsonObject};
//!
//! let mut policy = JsonObject::inline();
//! policy.string("kind", "top_share").f64("value", 0.2);
//! let mut summary = JsonObject::pretty();
//! summary.string("method", "nc").raw("policy", &policy.finish());
//! assert_eq!(
//!     summary.finish(),
//!     "{\n  \"method\": \"nc\",\n  \"policy\": { \"kind\": \"top_share\", \"value\": 0.2 }\n}"
//! );
//! assert_eq!(json::escape("tab\there"), "tab\\there");
//! ```

/// Append `text` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters; no surrounding quotes).
pub fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh string (still without quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_into(&mut out, text);
    out
}

/// `text` as a quoted, escaped JSON string literal.
pub fn string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    escape_into(&mut out, text);
    out.push('"');
    out
}

/// `value` as a JSON number via Rust's shortest-roundtrip `Display`
/// formatting; non-finite values (which JSON cannot represent) become `null`.
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// `value` as a JSON number with a fixed number of decimal places (the
/// summary format uses 6 for shares and 3 for milliseconds); non-finite
/// values become `null`.
pub fn number_fixed(value: f64, decimals: usize) -> String {
    if value.is_finite() {
        format!("{value:.decimals$}")
    } else {
        "null".to_string()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Style {
    /// `{ "k": v, "k2": v2 }` on a single line (for nested values).
    Inline,
    /// One field per line, two-space indent (for top-level documents).
    Pretty,
}

/// A JSON object under construction. Fields are emitted in call order.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    style: Style,
    fields: usize,
}

impl JsonObject {
    /// A single-line object: `{ "kind": "score", "value": 1.64 }`.
    pub fn inline() -> Self {
        JsonObject {
            buf: String::from("{"),
            style: Style::Inline,
            fields: 0,
        }
    }

    /// A multi-line object with two-space-indented fields.
    pub fn pretty() -> Self {
        JsonObject {
            buf: String::from("{"),
            style: Style::Pretty,
            fields: 0,
        }
    }

    fn key(&mut self, key: &str) {
        if self.fields > 0 {
            self.buf.push(',');
        }
        match self.style {
            Style::Inline => self.buf.push(' '),
            Style::Pretty => self.buf.push_str("\n  "),
        }
        self.fields += 1;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\": ");
    }

    /// Add an already-serialised JSON value (a nested object, array, or any
    /// raw token) under `key`.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Add a string field (escaped and quoted).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Add a numeric field via [`number`].
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let rendered = number(value);
        self.raw(key, &rendered)
    }

    /// Add a numeric field with fixed decimals via [`number_fixed`].
    pub fn f64_fixed(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        let rendered = number_fixed(value, decimals);
        self.raw(key, &rendered)
    }

    /// Add an integer field.
    pub fn usize(&mut self, key: &str, value: usize) -> &mut Self {
        let rendered = value.to_string();
        self.raw(key, &rendered)
    }

    /// Add an integer field from a `u64`.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        let rendered = value.to_string();
        self.raw(key, &rendered)
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Close the object and return its serialised form.
    pub fn finish(&mut self) -> String {
        let mut buf = std::mem::take(&mut self.buf);
        if self.fields == 0 {
            buf.push('}');
        } else {
            match self.style {
                Style::Inline => buf.push_str(" }"),
                Style::Pretty => buf.push_str("\n}"),
            }
        }
        buf
    }
}

/// A JSON array under construction. Elements are emitted in call order.
#[derive(Debug)]
pub struct JsonArray {
    buf: String,
    elements: usize,
}

impl JsonArray {
    /// An empty array builder (`[]` until elements are pushed).
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            elements: 0,
        }
    }

    fn separator(&mut self) {
        if self.elements > 0 {
            self.buf.push_str(", ");
        }
        self.elements += 1;
    }

    /// Push an already-serialised JSON value.
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.separator();
        self.buf.push_str(json);
        self
    }

    /// Push a string element (escaped and quoted).
    pub fn string(&mut self, value: &str) -> &mut Self {
        self.separator();
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Close the array and return its serialised form.
    pub fn finish(&mut self) -> String {
        let mut buf = std::mem::take(&mut self.buf);
        buf.push(']');
        buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        JsonArray::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("unicode: é λ"), "unicode: é λ");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn numbers_render_shortest_and_null_for_non_finite() {
        assert_eq!(number(0.2), "0.2");
        assert_eq!(number(5.0), "5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number_fixed(0.5, 6), "0.500000");
        assert_eq!(number_fixed(f64::NAN, 3), "null");
    }

    #[test]
    fn inline_objects_match_the_summary_style() {
        let mut o = JsonObject::inline();
        o.string("kind", "top_share").f64("value", 0.2);
        assert_eq!(o.finish(), "{ \"kind\": \"top_share\", \"value\": 0.2 }");
        assert_eq!(JsonObject::inline().finish(), "{}");
    }

    #[test]
    fn pretty_objects_indent_fields() {
        let mut o = JsonObject::pretty();
        o.usize("a", 1).bool("b", true).u64("c", 2);
        assert_eq!(o.finish(), "{\n  \"a\": 1,\n  \"b\": true,\n  \"c\": 2\n}");
        assert_eq!(JsonObject::pretty().finish(), "{}");
    }

    #[test]
    fn keys_are_escaped_too() {
        let mut o = JsonObject::inline();
        o.usize("a\"b", 1);
        assert_eq!(o.finish(), "{ \"a\\\"b\": 1 }");
    }

    #[test]
    fn arrays_join_elements() {
        let mut a = JsonArray::new();
        a.string("x").raw("1").raw("{}");
        assert_eq!(a.finish(), "[\"x\", 1, {}]");
        assert_eq!(JsonArray::default().finish(), "[]");
    }

    #[test]
    fn nesting_composes_through_raw() {
        let mut inner = JsonObject::inline();
        inner.usize("n", 7);
        let mut list = JsonArray::new();
        list.raw(&inner.finish());
        let mut outer = JsonObject::pretty();
        outer.raw("items", &list.finish());
        assert_eq!(outer.finish(), "{\n  \"items\": [{ \"n\": 7 }]\n}");
    }
}
