//! The scored-edge representation shared by all backboning methods.
//!
//! Every method assigns each edge a *significance score* such that higher
//! means "more salient" and the method's natural pruning rule is
//! `score ≥ threshold`:
//!
//! | Method | `score` | threshold meaning |
//! |---|---|---|
//! | Noise-Corrected | `L̃ij / sqrt(V[L̃ij])` (standard deviations above the null) | the paper's `δ` |
//! | NC (binomial p-value variant) | `1 − p` | `1 − p_max` |
//! | Disparity Filter | `1 − α` | `1 − α_max` |
//! | High Salience Skeleton | salience ∈ [0, 1] | salience cut |
//! | Doubly Stochastic | doubly-stochastic weight | weight cut |
//! | Maximum Spanning Tree | 1 for tree edges, 0 otherwise | any value in (0, 1] |
//! | Naive Threshold | raw weight | the naive weight cut `δ` |
//!
//! On top of thresholding, [`ScoredEdges`] supports selecting the `k` highest
//! scoring edges or a fixed *share* of edges — the mechanism the paper uses to
//! compare methods at equal backbone sizes in the coverage, quality and
//! stability experiments.

use backboning_graph::{GraphView, NodeId, WeightedGraph};

use crate::error::{BackboneError, BackboneResult};

/// How the two directed scores of an undirected edge are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Symmetrization {
    /// Keep the larger of the two directional scores (the default of the
    /// reference implementation: an edge is salient if it is salient in
    /// either direction).
    #[default]
    Max,
    /// Keep the smaller of the two directional scores (stricter: the edge must
    /// be salient in both directions).
    Min,
    /// Average the two directional scores.
    Average,
}

impl Symmetrization {
    /// Combine two directional scores.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            Symmetrization::Max => a.max(b),
            Symmetrization::Min => a.min(b),
            Symmetrization::Average => 0.5 * (a + b),
        }
    }
}

/// A single scored edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEdge {
    /// Dense index of the edge in the original graph.
    pub edge_index: usize,
    /// Source endpoint in the original graph.
    pub source: NodeId,
    /// Target endpoint in the original graph.
    pub target: NodeId,
    /// Original edge weight.
    pub weight: f64,
    /// Method-specific significance score (higher = more salient).
    pub score: f64,
    /// Method-specific raw score, when it differs from `score` (for the
    /// Noise-Corrected backbone: the transformed lift `L̃ij`).
    pub raw_score: Option<f64>,
    /// Standard deviation of the raw score under the null model (NC only).
    pub std_dev: Option<f64>,
    /// p-value of the edge under the method's null model, when defined.
    pub p_value: Option<f64>,
}

/// The scored edges of a graph under one backboning method.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredEdges {
    method: &'static str,
    node_count: usize,
    edges: Vec<ScoredEdge>,
}

impl ScoredEdges {
    /// Create a scored-edge set. Intended for use by backbone implementations.
    pub fn new(method: &'static str, node_count: usize, edges: Vec<ScoredEdge>) -> Self {
        ScoredEdges {
            method,
            node_count,
            edges,
        }
    }

    /// Name of the method that produced the scores.
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// Number of nodes in the original graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of scored edges (equals the original graph's edge count).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether there are no scored edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterate over the scored edges in original edge order.
    pub fn iter(&self) -> impl Iterator<Item = &ScoredEdge> {
        self.edges.iter()
    }

    /// Take the scored edges out, consuming the set — the zero-copy entry
    /// point of the in-place delta rescore.
    pub fn into_edges(self) -> Vec<ScoredEdge> {
        self.edges
    }

    /// The scored edge for a given original edge index, if present.
    pub fn get(&self, edge_index: usize) -> Option<&ScoredEdge> {
        self.edges.iter().find(|e| e.edge_index == edge_index)
    }

    /// All scores, in original edge order.
    pub fn scores(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.score).collect()
    }

    /// Indices (into the original graph) of edges whose score is at least
    /// `threshold`.
    pub fn filter(&self, threshold: f64) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.score >= threshold)
            .map(|e| e.edge_index)
            .collect()
    }

    /// The ranking order: descending score, ties broken by descending weight,
    /// then by ascending edge index for determinism.
    fn rank_order(&self, a: usize, b: usize) -> std::cmp::Ordering {
        let ea = &self.edges[a];
        let eb = &self.edges[b];
        eb.score
            .partial_cmp(&ea.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                eb.weight
                    .partial_cmp(&ea.weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| ea.edge_index.cmp(&eb.edge_index))
    }

    /// Indices of the `k` highest scoring edges, in ranking order (descending
    /// score, ties broken by descending weight, then by edge index).
    ///
    /// # Tie-break and determinism contract
    ///
    /// The ranking comparator is a **total order** over edges: descending
    /// `score`, then descending `weight`, then *ascending* `edge_index` as the
    /// final tiebreaker (incomparable floats — NaN — compare equal and fall
    /// through to the next key). Because `edge_index` is unique, two distinct
    /// edges never compare equal, so the selected set and its order are a pure
    /// function of the scores: independent of thread count, selection
    /// algorithm, and call order. Equal-score, equal-weight edges are kept in
    /// original edge order — the contract the evaluation sweeps and the
    /// `Pipeline` golden tests rely on.
    ///
    /// Uses `select_nth_unstable_by` partial selection — `O(E)` to isolate the
    /// top `k`, plus `O(k log k)` to order them — instead of a full
    /// `O(E log E)` sort. The returned set and order are exactly those of a
    /// full sort, because the tie-break comparator is a total order.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        if k == 0 || self.edges.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.edges.len()).collect();
        if k < order.len() {
            order.select_nth_unstable_by(k - 1, |&a, &b| self.rank_order(a, b));
            order.truncate(k);
        }
        order.sort_unstable_by(|&a, &b| self.rank_order(a, b));
        order
            .into_iter()
            .map(|i| self.edges[i].edge_index)
            .collect()
    }

    /// Indices of the top `share` (in `[0, 1]`) of edges by score.
    ///
    /// The edge count is `round(share × E)` — round-half-up, so `share = 0.5`
    /// of 5 edges keeps 3 — and the selection inherits the deterministic
    /// tie-break contract of [`ScoredEdges::top_k`]: the result is the same
    /// set, in the same ranking order, on every run and at every thread
    /// count.
    pub fn top_share(&self, share: f64) -> BackboneResult<Vec<usize>> {
        if !(0.0..=1.0).contains(&share) {
            return Err(BackboneError::InvalidParameter {
                parameter: "share",
                message: format!("must lie in [0, 1], got {share}"),
            });
        }
        let k = (share * self.edges.len() as f64).round() as usize;
        Ok(self.top_k(k))
    }

    /// The score threshold that keeps exactly the top `k` edges (the k-th
    /// highest score), or `None` when `k` is zero or exceeds the edge count.
    pub fn threshold_for_count(&self, k: usize) -> Option<f64> {
        if k == 0 || k > self.edges.len() {
            return None;
        }
        let mut scores = self.scores();
        // Partial selection: only the k-th highest score is needed.
        let (_, kth, _) = scores.select_nth_unstable_by(k - 1, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        Some(*kth)
    }

    /// Build the backbone graph containing edges with score at least `threshold`.
    pub fn backbone<G: GraphView>(
        &self,
        graph: &G,
        threshold: f64,
    ) -> BackboneResult<WeightedGraph> {
        Ok(graph.subgraph_with_edges(&self.filter(threshold))?)
    }

    /// Build the backbone graph containing the `k` highest scoring edges.
    pub fn backbone_top_k<G: GraphView>(
        &self,
        graph: &G,
        k: usize,
    ) -> BackboneResult<WeightedGraph> {
        Ok(graph.subgraph_with_edges(&self.top_k(k))?)
    }

    /// Build the backbone graph containing the top `share` of edges by score.
    pub fn backbone_top_share<G: GraphView>(
        &self,
        graph: &G,
        share: f64,
    ) -> BackboneResult<WeightedGraph> {
        Ok(graph.subgraph_with_edges(&self.top_share(share)?)?)
    }
}

impl<'a> IntoIterator for &'a ScoredEdges {
    type Item = &'a ScoredEdge;
    type IntoIter = std::slice::Iter<'a, ScoredEdge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

/// The common interface of all backboning methods.
pub trait BackboneExtractor {
    /// Human-readable method name (used in reports and benchmarks).
    fn name(&self) -> &'static str;

    /// Score every edge of the graph.
    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges>;

    /// Convenience: score the graph and keep edges with score at least
    /// `threshold`.
    fn extract(&self, graph: &WeightedGraph, threshold: f64) -> BackboneResult<WeightedGraph> {
        self.score(graph)?.backbone(graph, threshold)
    }

    /// Convenience: score the graph and keep the `k` highest scoring edges.
    fn extract_top_k(&self, graph: &WeightedGraph, k: usize) -> BackboneResult<WeightedGraph> {
        self.score(graph)?.backbone_top_k(graph, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::Direction;

    fn sample_scores() -> (WeightedGraph, ScoredEdges) {
        let graph = WeightedGraph::from_edges(
            Direction::Directed,
            4,
            vec![(0, 1, 10.0), (1, 2, 5.0), (2, 3, 1.0), (3, 0, 7.0)],
        )
        .unwrap();
        let edges = graph
            .edges()
            .map(|e| ScoredEdge {
                edge_index: e.index,
                source: e.source,
                target: e.target,
                weight: e.weight,
                score: e.weight / 10.0,
                raw_score: None,
                std_dev: None,
                p_value: None,
            })
            .collect();
        let scored = ScoredEdges::new("test", graph.node_count(), edges);
        (graph, scored)
    }

    #[test]
    fn basic_accessors() {
        let (_, scored) = sample_scores();
        assert_eq!(scored.method(), "test");
        assert_eq!(scored.len(), 4);
        assert!(!scored.is_empty());
        assert_eq!(scored.node_count(), 4);
        assert_eq!(scored.scores(), vec![1.0, 0.5, 0.1, 0.7]);
        assert!(scored.get(2).is_some());
        assert!(scored.get(9).is_none());
    }

    #[test]
    fn filter_by_threshold() {
        let (_, scored) = sample_scores();
        assert_eq!(scored.filter(0.6), vec![0, 3]);
        assert_eq!(scored.filter(0.0).len(), 4);
        assert!(scored.filter(2.0).is_empty());
    }

    #[test]
    fn top_k_is_sorted_by_score() {
        let (_, scored) = sample_scores();
        assert_eq!(scored.top_k(2), vec![0, 3]);
        assert_eq!(scored.top_k(0), Vec::<usize>::new());
        assert_eq!(scored.top_k(10).len(), 4);
    }

    #[test]
    fn top_share_selects_fraction() {
        let (_, scored) = sample_scores();
        assert_eq!(scored.top_share(0.5).unwrap(), vec![0, 3]);
        assert_eq!(scored.top_share(1.0).unwrap().len(), 4);
        assert!(scored.top_share(0.0).unwrap().is_empty());
        assert!(scored.top_share(1.5).is_err());
    }

    #[test]
    fn threshold_for_count_matches_filter() {
        let (_, scored) = sample_scores();
        let threshold = scored.threshold_for_count(2).unwrap();
        assert_eq!(scored.filter(threshold).len(), 2);
        assert_eq!(scored.threshold_for_count(0), None);
        assert_eq!(scored.threshold_for_count(99), None);
    }

    #[test]
    fn backbone_graphs_preserve_node_set() {
        let (graph, scored) = sample_scores();
        let backbone = scored.backbone(&graph, 0.6).unwrap();
        assert_eq!(backbone.node_count(), 4);
        assert_eq!(backbone.edge_count(), 2);

        let top = scored.backbone_top_k(&graph, 1).unwrap();
        assert_eq!(top.edge_count(), 1);
        assert!(top.has_edge(0, 1));

        let share = scored.backbone_top_share(&graph, 0.75).unwrap();
        assert_eq!(share.edge_count(), 3);
    }

    #[test]
    fn ties_are_broken_deterministically() {
        let graph = WeightedGraph::from_edges(
            Direction::Directed,
            3,
            vec![(0, 1, 5.0), (1, 2, 5.0), (2, 0, 5.0)],
        )
        .unwrap();
        let edges: Vec<ScoredEdge> = graph
            .edges()
            .map(|e| ScoredEdge {
                edge_index: e.index,
                source: e.source,
                target: e.target,
                weight: e.weight,
                score: 1.0,
                raw_score: None,
                std_dev: None,
                p_value: None,
            })
            .collect();
        let scored = ScoredEdges::new("tied", 3, edges);
        assert_eq!(scored.top_k(2), vec![0, 1]);
    }

    #[test]
    fn symmetrization_combinations() {
        assert_eq!(Symmetrization::Max.combine(1.0, 2.0), 2.0);
        assert_eq!(Symmetrization::Min.combine(1.0, 2.0), 1.0);
        assert_eq!(Symmetrization::Average.combine(1.0, 2.0), 1.5);
        assert_eq!(Symmetrization::default(), Symmetrization::Max);
    }

    #[test]
    fn into_iterator_yields_all_edges() {
        let (_, scored) = sample_scores();
        let count = (&scored).into_iter().count();
        assert_eq!(count, 4);
    }
}
