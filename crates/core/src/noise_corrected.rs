//! The Noise-Corrected (NC) backbone — the paper's primary contribution.
//!
//! The NC backbone models each observed edge weight `N̂ij` as the number of
//! successes among `N̂..` unitary interactions, each succeeding with an unknown
//! probability `P_ij` (a binomial null model). The method proceeds in three
//! steps (paper, Section IV):
//!
//! 1. **Transform** the edge weight into a symmetric *lift* score centred on
//!    zero:
//!    `L̃ij = (κ N̂ij − 1) / (κ N̂ij + 1)` with `κ = N̂.. / (N̂i. N̂.j)`.
//! 2. **Estimate the variance** of `L̃ij` with the delta method, where the
//!    variance of `N̂ij` comes from the binomial model with `P_ij` estimated in
//!    a *Bayesian* framework: the prior is the conjugate Beta distribution
//!    whose mean and variance match a hypergeometric edge-formation null
//!    model, and the posterior follows from the observed weight (Eqs. 3–8).
//!    The Bayesian step is what keeps variance estimates strictly positive for
//!    weak and zero-weight edges.
//! 3. **Prune**: keep an edge iff `L̃ij > δ · sqrt(V[L̃ij])`, i.e. the
//!    transformed lift exceeds the null expectation (zero) by at least `δ`
//!    standard deviations.
//!
//! The [`ScoredEdges`] produced here carry `score = L̃ij / sqrt(V[L̃ij])` (the
//! number of standard deviations above the expectation), so the pruning rule
//! is exactly `score ≥ δ`, with `δ` the paper's only parameter.
//!
//! [`NoiseCorrectedBinomial`] implements the alternative mentioned in the
//! paper's footnote 2: skip the transformation and compute a p-value directly
//! from the binomial null model. It is cheaper but cannot say whether two
//! edges differ significantly from each other.

use backboning_graph::{EdgeRef, GraphView, WeightedGraph};
use backboning_parallel::{clamped_threads, par_map};
use backboning_stats::distributions::{Binomial, ContinuousDistribution};
use backboning_stats::BetaBinomialModel;

use crate::error::{BackboneError, BackboneResult};
use crate::scored::{BackboneExtractor, ScoredEdge, ScoredEdges};
use crate::totals::NetworkTotals;

/// The Noise-Corrected backbone extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseCorrected {
    /// Whether to estimate `P_ij` with the Bayesian Beta–Binomial posterior
    /// (the paper's method). When `false` the plug-in estimate
    /// `P̂ij = N̂ij / N̂..` is used instead, which degenerates for zero-weight
    /// and low-information edges — exposed for the ablation study.
    pub bayesian_prior: bool,
}

impl Default for NoiseCorrected {
    fn default() -> Self {
        NoiseCorrected {
            bayesian_prior: true,
        }
    }
}

impl NoiseCorrected {
    /// The paper's method: Bayesian posterior estimation of `P_ij`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ablation variant using the raw plug-in estimate of `P_ij`.
    pub fn without_prior() -> Self {
        NoiseCorrected {
            bayesian_prior: false,
        }
    }

    /// Score a single edge given the precomputed totals. Returns
    /// `(transformed lift, standard deviation)`.
    fn score_edge(
        &self,
        weight: f64,
        out_strength: f64,
        in_strength: f64,
        total: f64,
    ) -> (f64, f64) {
        if out_strength <= 0.0 || in_strength <= 0.0 || total <= 1.0 {
            return (0.0, 0.0);
        }
        let kappa = total / (out_strength * in_strength);
        let lift_term = kappa * weight;
        let transformed_lift = (lift_term - 1.0) / (lift_term + 1.0);

        // Posterior (or plug-in) estimate of P_ij.
        let posterior_p = if self.bayesian_prior {
            match BetaBinomialModel::edge_prior(out_strength, in_strength, total)
                .and_then(|model| model.posterior(weight.min(total), total))
            {
                Ok(posterior) => posterior.mean(),
                // Degenerate prior moments (e.g. a node holding nearly all the
                // weight): fall back to the plug-in estimate.
                Err(_) => (weight / total).clamp(0.0, 1.0),
            }
        } else {
            (weight / total).clamp(0.0, 1.0)
        };

        // Binomial variance of the edge weight (Eq. 2 with the posterior P_ij).
        let weight_variance = total * posterior_p * (1.0 - posterior_p);

        // Delta method: V[L̃ij] = V[N̂ij] · (2 (κ + N̂ij dκ/dN̂ij) / (κ N̂ij + 1)²)².
        let d_kappa = 1.0 / (out_strength * in_strength)
            - total * (out_strength + in_strength) / (out_strength * in_strength).powi(2);
        let derivative = 2.0 * (kappa + weight * d_kappa) / (lift_term + 1.0).powi(2);
        let lift_variance = weight_variance * derivative * derivative;

        (transformed_lift, lift_variance.max(0.0).sqrt())
    }

    /// Score every edge with an explicit worker count (`0` = automatic,
    /// honoring `BACKBONING_THREADS`). Each edge's score is a pure function of
    /// the precomputed totals, and the scored list preserves edge order, so
    /// the result is bit-identical for every thread count.
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        let totals = NetworkTotals::compute(graph);
        let edges: Vec<EdgeRef> = graph.edges().collect();
        let scored = par_map(
            &edges,
            clamped_threads(threads, edges.len(), 2048),
            |_, edge| {
                // The NC score formula is symmetric in (out-strength of the source,
                // in-strength of the target); for undirected graphs both directions
                // give the same value, so a single evaluation suffices.
                let (transformed_lift, std_dev) = self.score_edge(
                    edge.weight,
                    totals.out_strength[edge.source],
                    totals.in_strength[edge.target],
                    totals.total,
                );
                let score = if std_dev > 0.0 {
                    transformed_lift / std_dev
                } else if transformed_lift > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                ScoredEdge {
                    edge_index: edge.index,
                    source: edge.source,
                    target: edge.target,
                    weight: edge.weight,
                    score,
                    raw_score: Some(transformed_lift),
                    std_dev: Some(std_dev),
                    p_value: None,
                }
            },
        );
        Ok(ScoredEdges::new(
            BackboneExtractor::name(self),
            graph.node_count(),
            scored,
        ))
    }
}

impl BackboneExtractor for NoiseCorrected {
    fn name(&self) -> &'static str {
        if self.bayesian_prior {
            "noise_corrected"
        } else {
            "noise_corrected_no_prior"
        }
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

/// The direct binomial p-value variant of the Noise-Corrected backbone
/// (paper, footnote 2).
///
/// The p-value of an edge is `P(X ≥ N̂ij)` for
/// `X ~ Binomial(N̂.., N̂i. N̂.j / N̂..²)`. The resulting `score` is `1 − p`, so
/// thresholding at `1 − p_max` keeps edges significant at level `p_max`.
/// Edge weights are rounded to the nearest integer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoiseCorrectedBinomial;

impl NoiseCorrectedBinomial {
    /// Create the extractor.
    pub fn new() -> Self {
        NoiseCorrectedBinomial
    }

    /// Score every edge with an explicit worker count (`0` = automatic). Edge
    /// p-values are independent, so the result is thread-count invariant.
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        let totals = NetworkTotals::compute(graph);
        if totals.total > 4.0e18 {
            return Err(BackboneError::UnsupportedGraph {
                method: "noise_corrected_binomial",
                message: format!(
                    "total weight {} is too large to treat as an integer trial count",
                    totals.total
                ),
            });
        }
        let trials = totals.total.round().max(0.0) as u64;
        let edges: Vec<EdgeRef> = graph.edges().collect();
        let scored = par_map(
            &edges,
            clamped_threads(threads, edges.len(), 2048),
            |_, edge| {
                let out_strength = totals.out_strength[edge.source];
                let in_strength = totals.in_strength[edge.target];
                let p_value = if out_strength <= 0.0 || in_strength <= 0.0 || trials == 0 {
                    Ok(1.0)
                } else {
                    let success_probability = (out_strength * in_strength
                        / (totals.total * totals.total))
                        .clamp(0.0, 1.0);
                    let observed = edge.weight.round().max(0.0) as u64;
                    Binomial::new(trials, success_probability)
                        .map_err(BackboneError::from)
                        .map(|binomial| binomial.upper_tail(observed))
                };
                p_value.map(|p_value| ScoredEdge {
                    edge_index: edge.index,
                    source: edge.source,
                    target: edge.target,
                    weight: edge.weight,
                    score: 1.0 - p_value,
                    raw_score: None,
                    std_dev: None,
                    p_value: Some(p_value),
                })
            },
        )
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(ScoredEdges::new(
            BackboneExtractor::name(self),
            graph.node_count(),
            scored,
        ))
    }
}

impl BackboneExtractor for NoiseCorrectedBinomial {
    fn name(&self) -> &'static str {
        "noise_corrected_binomial"
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, GraphBuilder, WeightedGraph};

    /// The toy example of the paper's Figure 3: a hub (node 0) connected to
    /// five peripheral nodes, two of which (1 and 2) share a weaker edge.
    fn figure3_toy() -> WeightedGraph {
        GraphBuilder::undirected()
            .indexed_edge(0, 1, 20.0)
            .indexed_edge(0, 2, 20.0)
            .indexed_edge(0, 3, 20.0)
            .indexed_edge(0, 4, 20.0)
            .indexed_edge(0, 5, 20.0)
            .indexed_edge(1, 2, 10.0)
            .build()
            .unwrap()
    }

    #[test]
    fn transformed_lift_is_centered_and_bounded() {
        let nc = NoiseCorrected::default();
        let graph = figure3_toy();
        let scored = nc.score(&graph).unwrap();
        for edge in scored.iter() {
            let lift = edge.raw_score.unwrap();
            assert!(lift > -1.0 && lift < 1.0, "lift {lift} out of (-1, 1)");
            assert!(edge.std_dev.unwrap() >= 0.0);
        }
    }

    #[test]
    fn peripheral_edge_beats_hub_edges_on_toy_example() {
        // The key qualitative behaviour of Figure 3: the weaker 1–2 edge is
        // *more* surprising than the stronger hub edges towards those same two
        // nodes, because nodes 1 and 2 already have appreciable strength of
        // their own — connecting to the hub is not extraordinary, connecting to
        // each other is. (The hub's edges towards its degree-1 leaves are a
        // different story: those carry the leaf's entire strength and stay
        // highly significant, exactly as in the paper's figure where they are
        // selected by both methods.)
        let nc = NoiseCorrected::default();
        let graph = figure3_toy();
        let scored = nc.score(&graph).unwrap();

        let peripheral_index = graph.edge_index(1, 2).unwrap();
        let peripheral = scored.get(peripheral_index).unwrap();
        for hub_target in [1usize, 2usize] {
            let hub_index = graph.edge_index(0, hub_target).unwrap();
            let hub_edge = scored.get(hub_index).unwrap();
            assert!(
                peripheral.raw_score.unwrap() > hub_edge.raw_score.unwrap(),
                "peripheral lift {} should exceed hub lift {}",
                peripheral.raw_score.unwrap(),
                hub_edge.raw_score.unwrap()
            );
            assert!(peripheral.score > hub_edge.score);
        }
    }

    #[test]
    fn expected_weight_edges_have_near_zero_lift() {
        // In a uniform complete graph every edge has exactly its expected
        // weight, so transformed lifts concentrate near zero (they are not
        // exactly zero because removing the diagonal shifts the expectation).
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 10);
        for i in 0..10usize {
            for j in 0..10usize {
                if i != j {
                    graph.add_edge(i, j, 5.0).unwrap();
                }
            }
        }
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!(edge.raw_score.unwrap().abs() < 0.1);
        }
    }

    #[test]
    fn scores_are_symmetric_for_undirected_graphs() {
        let graph = figure3_toy();
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        // Both hub edges 0-1 and 0-2 have identical structure → identical scores.
        let a = scored.get(graph.edge_index(0, 1).unwrap()).unwrap();
        let b = scored.get(graph.edge_index(0, 2).unwrap()).unwrap();
        assert!((a.score - b.score).abs() < 1e-12);
    }

    #[test]
    fn directed_scores_use_out_and_in_strengths() {
        // Node 0 sends a lot, node 2 receives little: an edge 0→2 is expected
        // to be small, so a moderate weight on it is salient.
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 4);
        graph.add_edge(0, 1, 100.0).unwrap();
        graph.add_edge(0, 2, 10.0).unwrap();
        graph.add_edge(3, 1, 100.0).unwrap();
        graph.add_edge(3, 2, 1.0).unwrap();
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        let strong_to_popular = scored.get(graph.edge_index(0, 1).unwrap()).unwrap();
        let moderate_to_unpopular = scored.get(graph.edge_index(0, 2).unwrap()).unwrap();
        // 10 units towards an unpopular receiver is more surprising than 100
        // units towards the receiver that gets almost everything.
        assert!(moderate_to_unpopular.raw_score.unwrap() > strong_to_popular.raw_score.unwrap());
    }

    #[test]
    fn bayesian_prior_keeps_variance_positive_for_weak_edges() {
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 3);
        graph.add_edge(0, 1, 1000.0).unwrap();
        graph.add_edge(1, 2, 1.0).unwrap();
        graph.add_edge(1, 0, 10.0).unwrap();
        graph.add_edge(2, 1, 5.0).unwrap();
        // A zero-weight edge explicitly present in the data.
        graph.add_edge(2, 0, 0.0).unwrap();

        let with_prior = NoiseCorrected::default().score(&graph).unwrap();
        let zero_edge = with_prior.get(graph.edge_index(2, 0).unwrap()).unwrap();
        assert!(
            zero_edge.std_dev.unwrap() > 0.0,
            "posterior variance must not degenerate"
        );

        let without_prior = NoiseCorrected::without_prior().score(&graph).unwrap();
        let zero_edge_plugin = without_prior.get(graph.edge_index(2, 0).unwrap()).unwrap();
        assert_eq!(
            zero_edge_plugin.std_dev.unwrap(),
            0.0,
            "plug-in variance degenerates to zero for zero-weight edges"
        );
    }

    #[test]
    fn extractor_names_distinguish_variants() {
        assert_eq!(NoiseCorrected::default().name(), "noise_corrected");
        assert_eq!(
            NoiseCorrected::without_prior().name(),
            "noise_corrected_no_prior"
        );
        assert_eq!(
            NoiseCorrectedBinomial::new().name(),
            "noise_corrected_binomial"
        );
    }

    #[test]
    fn backbone_extraction_prunes_hub_spokes_to_connected_pair_first() {
        // Figure 3 of the paper: at equal backbone size, the NC backbone keeps
        // the peripheral edge 1–2 and the hub's edges to its degree-1 leaves,
        // while the hub's edges to the already-connected pair (the blue dashed
        // edges of the figure) are the first to be pruned.
        let graph = figure3_toy();
        let nc = NoiseCorrected::default();
        let scored = nc.score(&graph).unwrap();
        let top4 = scored.top_k(4);
        assert!(top4.contains(&graph.edge_index(1, 2).unwrap()));
        assert!(!top4.contains(&graph.edge_index(0, 1).unwrap()));
        assert!(!top4.contains(&graph.edge_index(0, 2).unwrap()));
        let backbone = scored.backbone_top_k(&graph, 4).unwrap();
        assert_eq!(backbone.edge_count(), 4);
        assert!(backbone.has_edge(1, 2));
        assert_eq!(backbone.node_count(), graph.node_count());
    }

    #[test]
    fn delta_threshold_reduces_edge_count_monotonically() {
        let graph = figure3_toy();
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        let loose = scored.filter(0.0).len();
        let medium = scored.filter(1.28).len();
        let strict = scored.filter(2.32).len();
        assert!(loose >= medium);
        assert!(medium >= strict);
    }

    #[test]
    fn binomial_variant_agrees_qualitatively_with_nc() {
        let graph = figure3_toy();
        let nc = NoiseCorrected::default().score(&graph).unwrap();
        let binomial = NoiseCorrectedBinomial::new().score(&graph).unwrap();

        // Both variants consider the peripheral 1–2 edge more significant than
        // the hub's edge towards node 1 (which node 1 would form anyway given
        // its strength and the hub's attraction).
        let peripheral = graph.edge_index(1, 2).unwrap();
        let hub = graph.edge_index(0, 1).unwrap();
        assert!(nc.get(peripheral).unwrap().score > nc.get(hub).unwrap().score);
        assert!(
            binomial.get(peripheral).unwrap().p_value.unwrap()
                < binomial.get(hub).unwrap().p_value.unwrap()
        );
    }

    #[test]
    fn binomial_variant_p_values_are_probabilities() {
        let graph = figure3_toy();
        let scored = NoiseCorrectedBinomial::new().score(&graph).unwrap();
        for edge in scored.iter() {
            let p = edge.p_value.unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert!((edge.score - (1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_single_edge_graphs_are_handled() {
        let empty = WeightedGraph::directed();
        let scored = NoiseCorrected::default().score(&empty).unwrap();
        assert!(scored.is_empty());

        let single = WeightedGraph::from_edges(Direction::Directed, 2, vec![(0, 1, 5.0)]).unwrap();
        let scored = NoiseCorrected::default().score(&single).unwrap();
        assert_eq!(scored.len(), 1);
        // With a single edge the network total is tiny; the score must be finite or zero.
        let edge = scored.iter().next().unwrap();
        assert!(edge.score.is_finite() || edge.score == 0.0);
    }

    #[test]
    fn prior_and_no_prior_agree_on_heavy_edges() {
        // For well-measured (heavy) edges the Bayesian update is dominated by
        // the data, so both variants should give nearly identical scores.
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 20);
        for i in 0..20usize {
            for j in 0..20usize {
                if i != j {
                    graph
                        .add_edge(i, j, 50.0 + ((i * 7 + j * 3) % 13) as f64 * 10.0)
                        .unwrap();
                }
            }
        }
        let with_prior = NoiseCorrected::default().score(&graph).unwrap();
        let without = NoiseCorrected::without_prior().score(&graph).unwrap();
        for (a, b) in with_prior.iter().zip(without.iter()) {
            // The transformed lift does not depend on the prior at all.
            assert!((a.raw_score.unwrap() - b.raw_score.unwrap()).abs() < 1e-12);
            // The prior shrinks the posterior towards the null expectation, so
            // the two standard deviations differ, but for heavy, well-measured
            // edges they stay within the same order of magnitude.
            let ratio = a.std_dev.unwrap() / b.std_dev.unwrap().max(1e-300);
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "std-dev ratio {ratio} outside [0.5, 2]"
            );
        }
    }
}
