//! Per-node strengths and network totals, computed in one pass.

use backboning_graph::GraphView;

/// Strengths and totals of the (possibly symmetrised) network, precomputed
/// once per extraction and shared by the statistical extractors.
pub(crate) struct NetworkTotals {
    /// Total outgoing weight per node, `N_i. = Σ_j N_ij`.
    pub out_strength: Vec<f64>,
    /// Total incoming weight per node, `N_.j = Σ_i N_ij`.
    pub in_strength: Vec<f64>,
    /// Total weight in the network, `N_..` (sum of strengths for undirected
    /// graphs, matching the symmetrised table of the reference implementation).
    pub total: f64,
}

impl NetworkTotals {
    /// Build the strengths in a single `O(V + E)` pass over the edge list.
    ///
    /// Per-node contributions are accumulated in edge-insertion order — the
    /// same order in which the per-node adjacency lists store them — so the
    /// resulting sums are bit-identical to per-node
    /// `WeightedGraph::out_strength`/`WeightedGraph::in_strength` sums, and
    /// identical across graph representations (the edge order is the dense
    /// edge-id order on both).
    pub fn compute<G: GraphView>(graph: &G) -> Self {
        let node_count = graph.node_count();
        let mut out_strength = vec![0.0; node_count];
        if graph.is_directed() {
            let mut in_strength = vec![0.0; node_count];
            let mut total = 0.0;
            for edge in graph.edges() {
                out_strength[edge.source] += edge.weight;
                in_strength[edge.target] += edge.weight;
                total += edge.weight;
            }
            NetworkTotals {
                out_strength,
                in_strength,
                total,
            }
        } else {
            for edge in graph.edges() {
                out_strength[edge.source] += edge.weight;
                if edge.source != edge.target {
                    out_strength[edge.target] += edge.weight;
                }
            }
            // Every undirected edge is counted from both endpoints, so the
            // relevant total is the sum of strengths (≈ 2× the edge-weight sum).
            let total = out_strength.iter().sum();
            NetworkTotals {
                in_strength: out_strength.clone(),
                out_strength,
                total,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{CsrGraph, Direction, WeightedGraph};

    #[test]
    fn single_pass_matches_per_node_iterator_sums() {
        for direction in [Direction::Directed, Direction::Undirected] {
            let mut graph = WeightedGraph::with_nodes(direction, 7);
            let mut k = 0u32;
            for i in 0..7usize {
                for j in 0..7usize {
                    if i != j && (i + 3 * j) % 4 != 0 {
                        k += 1;
                        graph.add_edge(i, j, 0.37 * f64::from(k)).unwrap();
                    }
                }
            }
            // A self-loop, which must be counted once.
            graph.add_edge(2, 2, 1.5).unwrap();

            let totals = NetworkTotals::compute(&graph);
            for node in graph.nodes() {
                assert_eq!(totals.out_strength[node], graph.out_strength(node));
                assert_eq!(totals.in_strength[node], graph.in_strength(node));
            }
            let expected_total = if graph.is_directed() {
                graph.total_weight()
            } else {
                graph.nodes().map(|n| graph.out_strength(n)).sum()
            };
            assert_eq!(totals.total, expected_total);
        }
    }

    #[test]
    fn csr_totals_are_bit_identical() {
        for direction in [Direction::Directed, Direction::Undirected] {
            let mut graph = WeightedGraph::with_nodes(direction, 6);
            let mut k = 0u32;
            for i in 0..6usize {
                for j in 0..6usize {
                    if i != j && (i * 2 + j) % 3 != 0 {
                        k += 1;
                        graph.add_edge(i, j, 0.61 * f64::from(k)).unwrap();
                    }
                }
            }
            let csr = CsrGraph::from_graph(&graph).unwrap();
            let reference = NetworkTotals::compute(&graph);
            let compact = NetworkTotals::compute(&csr);
            assert_eq!(reference.out_strength, compact.out_strength);
            assert_eq!(reference.in_strength, compact.in_strength);
            assert_eq!(reference.total, compact.total);
        }
    }

    #[test]
    fn empty_graph_has_zero_totals() {
        let totals = NetworkTotals::compute(&WeightedGraph::undirected());
        assert!(totals.out_strength.is_empty());
        assert!(totals.in_strength.is_empty());
        assert_eq!(totals.total, 0.0);
    }
}
