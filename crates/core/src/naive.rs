//! The naive weight-threshold backbone.
//!
//! The simplest possible approach (paper, Section III-B): keep every edge
//! whose raw weight exceeds an arbitrary threshold `δ`. The paper uses it as
//! the floor any principled method must beat; its known failure modes —
//! meaningless thresholds under broad weight distributions and wholesale
//! removal of weakly-connected regions — are exactly what the evaluation
//! criteria expose.

use backboning_graph::{GraphView, WeightedGraph};

use crate::error::BackboneResult;
use crate::scored::{BackboneExtractor, ScoredEdge, ScoredEdges};

/// The naive-threshold backbone extractor: the score of an edge is its raw weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NaiveThreshold;

impl NaiveThreshold {
    /// Create the extractor.
    pub fn new() -> Self {
        NaiveThreshold
    }

    /// Score every edge of any graph representation. The score of an edge is
    /// its raw weight; `_threads` is accepted for registry uniformity (the
    /// pass is a single sequential scan).
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        _threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        let scored = graph
            .edges()
            .map(|edge| ScoredEdge {
                edge_index: edge.index,
                source: edge.source,
                target: edge.target,
                weight: edge.weight,
                score: edge.weight,
                raw_score: None,
                std_dev: None,
                p_value: None,
            })
            .collect();
        Ok(ScoredEdges::new(
            BackboneExtractor::name(self),
            graph.node_count(),
            scored,
        ))
    }
}

impl BackboneExtractor for NaiveThreshold {
    fn name(&self) -> &'static str {
        "naive_threshold"
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, GraphBuilder, WeightedGraph};

    #[test]
    fn score_equals_weight() {
        let graph = GraphBuilder::directed()
            .indexed_edge(0, 1, 3.5)
            .indexed_edge(1, 2, 0.5)
            .build()
            .unwrap();
        let scored = NaiveThreshold::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert_eq!(edge.score, edge.weight);
        }
    }

    #[test]
    fn thresholding_keeps_heavy_edges() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(1, 2, 1.0)
            .indexed_edge(2, 3, 5.0)
            .build()
            .unwrap();
        let backbone = NaiveThreshold::new().extract(&graph, 4.0).unwrap();
        assert_eq!(backbone.edge_count(), 2);
        assert!(backbone.has_edge(0, 1));
        assert!(backbone.has_edge(2, 3));
        assert!(!backbone.has_edge(1, 2));
    }

    #[test]
    fn naive_threshold_can_isolate_weak_nodes() {
        // The known failure mode: node 3 only has weak edges, so any threshold
        // that prunes noise also disconnects it entirely.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 100.0)
            .indexed_edge(0, 2, 90.0)
            .indexed_edge(1, 2, 95.0)
            .indexed_edge(0, 3, 1.0)
            .indexed_edge(1, 3, 2.0)
            .build()
            .unwrap();
        let backbone = NaiveThreshold::new().extract(&graph, 50.0).unwrap();
        assert!(backbone.isolates().contains(&3));
    }

    #[test]
    fn top_k_selects_heaviest_edges() {
        let graph = GraphBuilder::directed()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(1, 2, 2.0)
            .indexed_edge(2, 3, 3.0)
            .build()
            .unwrap();
        let scored = NaiveThreshold::new().score(&graph).unwrap();
        assert_eq!(scored.top_k(1), vec![2]);
    }

    #[test]
    fn empty_graph_is_handled() {
        let empty = WeightedGraph::new(Direction::Directed);
        let scored = NaiveThreshold::new().score(&empty).unwrap();
        assert!(scored.is_empty());
    }
}
