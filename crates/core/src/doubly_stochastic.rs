//! The Doubly-Stochastic backbone (Slater, 2009).
//!
//! A two-stage structural method (paper, Section III-B): first the adjacency
//! matrix is transformed into a doubly-stochastic matrix by alternately
//! normalising rows and columns (Sinkhorn–Knopp); then edges are added to the
//! backbone in order of decreasing normalised weight until every node belongs
//! to a single connected component.
//!
//! Limitations reproduced from the paper:
//!
//! * the adjacency matrix must be square with no all-zero row or column, and
//!   not every such matrix admits a doubly-stochastic scaling (Sinkhorn 1964) —
//!   this is why the method is reported as "n/a" for several of the paper's
//!   networks;
//! * the method has no parameter, so it appears as a single point (rather than
//!   a sweep) in the coverage and stability figures;
//! * the dense normalisation makes it far slower than NC/DF/NT on large
//!   networks (Figure 9).

use backboning_graph::algorithms::union_find::UnionFind;
use backboning_graph::matrix::AdjacencyMatrix;
use backboning_graph::{EdgeRef, GraphView, WeightedGraph};
use backboning_parallel::{clamped_threads, par_map};

use crate::error::{BackboneError, BackboneResult};
use crate::scored::{BackboneExtractor, ScoredEdge, ScoredEdges};

/// The Doubly-Stochastic backbone extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoublyStochastic {
    /// Convergence tolerance of the Sinkhorn–Knopp iteration.
    pub tolerance: f64,
    /// Maximum number of Sinkhorn–Knopp sweeps before giving up.
    pub max_iterations: usize,
}

impl Default for DoublyStochastic {
    fn default() -> Self {
        DoublyStochastic {
            tolerance: 1e-9,
            max_iterations: 1_000,
        }
    }
}

impl DoublyStochastic {
    /// Create the extractor with default convergence settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute the doubly-stochastic weight of every edge.
    ///
    /// The Sinkhorn–Knopp sweeps are inherently sequential (each sweep reads
    /// the previous one), but the per-edge read-out of the scaled matrix is
    /// chunked across workers; per-edge values are independent, so the result
    /// is thread-count invariant.
    fn normalised_weights<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<Vec<f64>> {
        if graph.node_count() == 0 || graph.edge_count() == 0 {
            return Ok(vec![0.0; graph.edge_count()]);
        }
        let matrix = AdjacencyMatrix::from_graph(graph);
        let doubly_stochastic = matrix
            .sinkhorn_knopp(self.tolerance, self.max_iterations)
            .map_err(|err| BackboneError::UnsupportedGraph {
                method: "doubly_stochastic",
                message: err.to_string(),
            })?;
        let edges: Vec<EdgeRef> = graph.edges().collect();
        let directed = graph.is_directed();
        Ok(par_map(
            &edges,
            clamped_threads(threads, edges.len(), 2048),
            |_, edge| {
                let forward = doubly_stochastic.get(edge.source, edge.target);
                if directed {
                    forward
                } else {
                    // The scaled matrix is generally *not* symmetric even for a
                    // symmetric input; use the larger orientation.
                    forward.max(doubly_stochastic.get(edge.target, edge.source))
                }
            },
        ))
    }

    /// Score every edge with an explicit worker count (`0` = automatic).
    pub fn score_with_threads<G: GraphView>(
        &self,
        graph: &G,
        threads: usize,
    ) -> BackboneResult<ScoredEdges> {
        let weights = self.normalised_weights(graph, threads)?;
        let scored = graph
            .edges()
            .map(|edge| ScoredEdge {
                edge_index: edge.index,
                source: edge.source,
                target: edge.target,
                weight: edge.weight,
                score: weights[edge.index],
                raw_score: None,
                std_dev: None,
                p_value: None,
            })
            .collect();
        Ok(ScoredEdges::new(
            BackboneExtractor::name(self),
            graph.node_count(),
            scored,
        ))
    }

    /// The paper's parameter-free backbone: add edges in decreasing
    /// doubly-stochastic weight until all non-isolated nodes of the original
    /// graph belong to one connected component, then stop. Returns the dense
    /// edge indices of the selected edges.
    pub fn fixed_edge_set<G: GraphView>(&self, graph: &G) -> BackboneResult<Vec<usize>> {
        let scored = self.score_with_threads(graph, 0)?;
        Ok(Self::fixed_edge_set_from_scores(graph, &scored))
    }

    /// [`DoublyStochastic::fixed_edge_set`], reusing an already-computed score
    /// set (the scores *are* the doubly-stochastic weights) so the Sinkhorn
    /// normalisation does not run a second time. Bit-identical to recomputing.
    pub fn fixed_edge_set_from_scores<G: GraphView>(graph: &G, scored: &ScoredEdges) -> Vec<usize> {
        let weights = scored.scores();
        let mut order: Vec<usize> = (0..graph.edge_count()).collect();
        order.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });

        // Target connectivity: every node that is non-isolated in the original
        // graph must end up in a single component.
        let relevant: Vec<usize> = graph.nodes().filter(|&n| graph.degree(n) > 0).collect();
        let mut union_find = UnionFind::new(graph.node_count());
        let mut selected = Vec::new();
        let mut connected_components_remaining = relevant.len();

        for index in order {
            if connected_components_remaining <= 1 {
                break;
            }
            let edge = graph.edge(index).expect("index in range");
            selected.push(index);
            if union_find.union(edge.source, edge.target) {
                connected_components_remaining -= 1;
            }
        }
        selected.sort_unstable();
        selected
    }

    /// Convenience: build the parameter-free backbone graph.
    pub fn extract_fixed<G: GraphView>(&self, graph: &G) -> BackboneResult<WeightedGraph> {
        Ok(graph.subgraph_with_edges(&self.fixed_edge_set(graph)?)?)
    }
}

impl BackboneExtractor for DoublyStochastic {
    fn name(&self) -> &'static str {
        "doubly_stochastic"
    }

    fn score(&self, graph: &WeightedGraph) -> BackboneResult<ScoredEdges> {
        self.score_with_threads(graph, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::algorithms::components::is_connected;
    use backboning_graph::{Direction, WeightedGraph};

    /// A dense directed graph on which the Sinkhorn scaling always exists.
    fn dense_directed(n: usize) -> WeightedGraph {
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    graph
                        .add_edge(i, j, 1.0 + ((i * 7 + j * 3) % 5) as f64)
                        .unwrap();
                }
            }
        }
        graph
    }

    #[test]
    fn normalised_scores_are_positive_and_bounded() {
        let graph = dense_directed(6);
        let scored = DoublyStochastic::new().score(&graph).unwrap();
        for edge in scored.iter() {
            assert!(edge.score > 0.0);
            assert!(edge.score <= 1.0);
        }
    }

    #[test]
    fn normalisation_boosts_edges_of_weak_nodes() {
        // Two nodes with very different total strengths: the doubly-stochastic
        // transformation re-weights their edges onto a comparable scale, so an
        // edge that dominates a weak node's budget scores higher than one that
        // is a small share of a strong node's budget, even at equal raw weight.
        let mut graph = WeightedGraph::with_nodes(Direction::Directed, 4);
        // Strong node 0 spreads 300 across three edges; weak node 3 has a single outgoing edge.
        graph.add_edge(0, 1, 100.0).unwrap();
        graph.add_edge(0, 2, 100.0).unwrap();
        graph.add_edge(0, 3, 100.0).unwrap();
        graph.add_edge(1, 2, 10.0).unwrap();
        graph.add_edge(1, 0, 10.0).unwrap();
        graph.add_edge(2, 3, 10.0).unwrap();
        graph.add_edge(2, 0, 5.0).unwrap();
        graph.add_edge(3, 0, 10.0).unwrap();
        graph.add_edge(1, 3, 1.0).unwrap();
        graph.add_edge(3, 1, 1.0).unwrap();
        graph.add_edge(2, 1, 1.0).unwrap();
        graph.add_edge(3, 2, 1.0).unwrap();

        let scored = DoublyStochastic::new().score(&graph).unwrap();
        let weak_nodes_edge = scored.get(graph.edge_index(3, 0).unwrap()).unwrap();
        let strong_nodes_edge = scored.get(graph.edge_index(0, 1).unwrap()).unwrap();
        assert!(weak_nodes_edge.score > strong_nodes_edge.score * 0.5);
    }

    #[test]
    fn fixed_edge_set_connects_all_non_isolated_nodes() {
        let graph = dense_directed(8);
        let ds = DoublyStochastic::new();
        let backbone = ds.extract_fixed(&graph).unwrap();
        assert_eq!(backbone.node_count(), graph.node_count());
        assert!(is_connected(&backbone));
        assert!(backbone.edge_count() < graph.edge_count());
        assert!(backbone.edge_count() >= graph.node_count() - 1);
    }

    #[test]
    fn fixed_edge_set_is_deterministic() {
        let graph = dense_directed(7);
        let ds = DoublyStochastic::new();
        assert_eq!(
            ds.fixed_edge_set(&graph).unwrap(),
            ds.fixed_edge_set(&graph).unwrap()
        );
    }

    #[test]
    fn graphs_without_scaling_are_rejected() {
        // A directed path: the first node has no incoming edges (zero column),
        // so no doubly-stochastic scaling exists — mirroring the "n/a" entries
        // of the paper's Table II.
        let graph =
            WeightedGraph::from_edges(Direction::Directed, 3, vec![(0, 1, 1.0), (1, 2, 1.0)])
                .unwrap();
        let result = DoublyStochastic::new().score(&graph);
        assert!(matches!(
            result,
            Err(BackboneError::UnsupportedGraph { .. })
        ));
    }

    #[test]
    fn undirected_graphs_are_supported() {
        let mut graph = WeightedGraph::with_nodes(Direction::Undirected, 5);
        for i in 0..5usize {
            for j in (i + 1)..5usize {
                graph.add_edge(i, j, 1.0 + (i + j) as f64).unwrap();
            }
        }
        let ds = DoublyStochastic::new();
        let scored = ds.score(&graph).unwrap();
        assert_eq!(scored.len(), graph.edge_count());
        let backbone = ds.extract_fixed(&graph).unwrap();
        assert!(is_connected(&backbone));
    }

    #[test]
    fn empty_graph_is_handled() {
        let empty = WeightedGraph::directed();
        let scored = DoublyStochastic::new().score(&empty).unwrap();
        assert!(scored.is_empty());
        assert!(DoublyStochastic::new()
            .fixed_edge_set(&empty)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn isolated_nodes_make_the_scaling_impossible() {
        // An isolated node contributes an all-zero row and column, so no
        // doubly-stochastic scaling exists — the same structural limitation
        // that makes the method "n/a" on several of the paper's networks.
        let mut graph = dense_directed(5);
        graph.add_node(); // isolated node 5
        let ds = DoublyStochastic::new();
        assert!(matches!(
            ds.fixed_edge_set(&graph),
            Err(BackboneError::UnsupportedGraph { .. })
        ));
    }
}
