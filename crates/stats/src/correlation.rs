//! Correlation coefficients: Pearson, log–log Pearson and Spearman.
//!
//! The paper uses Pearson correlation to validate the Noise-Corrected variance
//! estimates (Table I), log–log Pearson correlation to document the local
//! correlation of edge weights (Figure 6), and Spearman rank correlation for
//! the Stability criterion (Figure 8).

use crate::error::{StatsError, StatsResult};
use crate::rank::{rank, TieMethod};

/// Pearson product-moment correlation between two paired samples.
///
/// Returns an error when the inputs are empty, of different lengths, or when
/// either sample has zero variance (the correlation is undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> StatsResult<f64> {
    if x.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "pearson",
        });
    }
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            operation: "pearson",
            left: x.len(),
            right: y.len(),
        });
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;

    let mut covariance = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        covariance += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return Err(StatsError::InvalidParameter {
            parameter: "x/y",
            message: "correlation undefined for a constant sample".to_string(),
        });
    }
    Ok(covariance / (var_x.sqrt() * var_y.sqrt()))
}

/// Pearson correlation of `log10(x)` vs `log10(y)`, restricted to pairs where
/// both values are strictly positive.
///
/// This is the statistic reported in Figure 6 of the paper (edge weight vs
/// average neighbouring edge weight). Returns the correlation together with
/// the number of pairs actually used.
pub fn log_log_pearson(x: &[f64], y: &[f64]) -> StatsResult<(f64, usize)> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            operation: "log_log_pearson",
            left: x.len(),
            right: y.len(),
        });
    }
    let mut log_x = Vec::new();
    let mut log_y = Vec::new();
    for (&xi, &yi) in x.iter().zip(y) {
        if xi > 0.0 && yi > 0.0 {
            log_x.push(xi.log10());
            log_y.push(yi.log10());
        }
    }
    if log_x.len() < 2 {
        return Err(StatsError::InvalidParameter {
            parameter: "x/y",
            message: format!(
                "log-log correlation needs at least 2 strictly positive pairs, got {}",
                log_x.len()
            ),
        });
    }
    Ok((pearson(&log_x, &log_y)?, log_x.len()))
}

/// Spearman rank correlation between two paired samples (average ranks for ties).
pub fn spearman(x: &[f64], y: &[f64]) -> StatsResult<f64> {
    if x.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "spearman",
        });
    }
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            operation: "spearman",
            left: x.len(),
            right: y.len(),
        });
    }
    let ranks_x = rank(x, TieMethod::Average)?;
    let ranks_y = rank(y, TieMethod::Average)?;
    pearson(&ranks_x, &ranks_y)
}

/// Two-sided p-value for a Pearson/Spearman correlation of `r` on `n` pairs,
/// using the normal approximation of the Fisher z-transform.
///
/// The paper reports significance levels such as `p < 10⁻¹⁵` for the Figure 6
/// correlations; this helper reproduces those statements.
pub fn correlation_p_value(r: f64, n: usize) -> StatsResult<f64> {
    if n < 4 {
        return Err(StatsError::InvalidParameter {
            parameter: "n",
            message: format!("p-value needs at least 4 observations, got {n}"),
        });
    }
    if !(-1.0..=1.0).contains(&r) {
        return Err(StatsError::InvalidParameter {
            parameter: "r",
            message: format!("correlation must lie in [-1, 1], got {r}"),
        });
    }
    if r.abs() >= 1.0 {
        return Ok(0.0);
    }
    let z = 0.5 * ((1.0 + r) / (1.0 - r)).ln();
    let standard_error = 1.0 / ((n as f64 - 3.0).sqrt());
    let statistic = (z / standard_error).abs();
    Ok(2.0 * (1.0 - crate::special::standard_normal_cdf(statistic)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert_close(pearson(&x, &y).unwrap(), 1.0, 1e-12);
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert_close(pearson(&x, &y_neg).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // Hand-computed: cov = 4.0, var_x = 10, var_y = 10 → r = 0.8 (sums of squares).
        assert_close(pearson(&x, &y).unwrap(), 0.8, 1e-12);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[], &[]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn pearson_invariant_to_affine_transform() {
        let x = [0.3, 1.7, 2.9, 4.2, 5.0];
        let y = [1.0, 0.4, 2.2, 3.3, 2.8];
        let base = pearson(&x, &y).unwrap();
        let x_scaled: Vec<f64> = x.iter().map(|v| 3.0 * v + 10.0).collect();
        assert_close(pearson(&x_scaled, &y).unwrap(), base, 1e-12);
    }

    #[test]
    fn log_log_filters_non_positive_pairs() {
        let x = [10.0, 100.0, 0.0, 1000.0];
        let y = [1.0, 2.0, 5.0, 4.0];
        let (r, used) = log_log_pearson(&x, &y).unwrap();
        assert_eq!(used, 3);
        assert!(r > 0.9);
    }

    #[test]
    fn log_log_perfect_power_law() {
        // y = x^2 → perfectly linear in log-log space.
        let x = [1.0, 10.0, 100.0, 1000.0];
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let (r, used) = log_log_pearson(&x, &y).unwrap();
        assert_eq!(used, 4);
        assert_close(r, 1.0, 1e-12);
    }

    #[test]
    fn spearman_monotone_relationship() {
        // Monotone but non-linear relationship → Spearman = 1, Pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert_close(spearman(&x, &y).unwrap(), 1.0, 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_with_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 3.0, 4.0];
        assert_close(spearman(&x, &y).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn spearman_reversal() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_close(spearman(&x, &y).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn p_value_decreases_with_sample_size() {
        let p_small = correlation_p_value(0.5, 10).unwrap();
        let p_large = correlation_p_value(0.5, 1000).unwrap();
        assert!(p_large < p_small);
        assert!(p_large < 1e-9);
    }

    #[test]
    fn p_value_boundary_cases() {
        assert_eq!(correlation_p_value(1.0, 100).unwrap(), 0.0);
        assert!(correlation_p_value(0.5, 3).is_err());
        assert!(correlation_p_value(1.5, 100).is_err());
        let p_zero = correlation_p_value(0.0, 100).unwrap();
        assert_close(p_zero, 1.0, 1e-12);
    }
}
