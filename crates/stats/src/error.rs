//! Error types for the statistics substrate.

use std::fmt;

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slice was empty but the operation needs at least one element.
    EmptyInput {
        /// Name of the operation that failed.
        operation: &'static str,
    },
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Name of the operation that failed.
        operation: &'static str,
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A parameter was outside its admissible domain.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// A numerical routine failed to converge.
    ConvergenceFailure {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A matrix operation failed (singular matrix, not positive definite, ...).
    LinearAlgebra {
        /// Description of the failure.
        message: String,
    },
    /// The regression design matrix is rank deficient or otherwise unusable.
    Regression {
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput { operation } => {
                write!(f, "{operation}: input is empty")
            }
            StatsError::LengthMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "{operation}: paired inputs have different lengths ({left} vs {right})"
            ),
            StatsError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            StatsError::ConvergenceFailure {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} failed to converge after {iterations} iterations"
            ),
            StatsError::LinearAlgebra { message } => write!(f, "linear algebra error: {message}"),
            StatsError::Regression { message } => write!(f, "regression error: {message}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for statistical routines.
pub type StatsResult<T> = Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_input() {
        let err = StatsError::EmptyInput { operation: "mean" };
        assert_eq!(err.to_string(), "mean: input is empty");
    }

    #[test]
    fn display_length_mismatch() {
        let err = StatsError::LengthMismatch {
            operation: "pearson",
            left: 3,
            right: 5,
        };
        assert!(err.to_string().contains("pearson"));
        assert!(err.to_string().contains("3"));
        assert!(err.to_string().contains("5"));
    }

    #[test]
    fn display_invalid_parameter() {
        let err = StatsError::InvalidParameter {
            parameter: "alpha",
            message: "must be positive".to_string(),
        };
        assert!(err.to_string().contains("alpha"));
        assert!(err.to_string().contains("must be positive"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<StatsError>();
    }
}
