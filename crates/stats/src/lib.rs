//! # backboning-stats
//!
//! Statistics substrate for the `backboning-rs` workspace, a Rust reproduction of
//! *Network Backboning with Noisy Data* (Coscia & Neffke, ICDE 2017).
//!
//! The Noise-Corrected backbone and the paper's evaluation need a fairly wide
//! range of statistical machinery that is not available (or only partially
//! available) in lightweight Rust crates:
//!
//! * **Special functions** ([`special`]): log-gamma, regularized incomplete beta
//!   and gamma functions, error function — the building blocks of every
//!   distribution function used by the backbone algorithms.
//! * **Probability distributions** ([`distributions`]): Beta (the conjugate prior
//!   of the binomial edge-weight model), Binomial (the edge-weight null model),
//!   Normal (confidence thresholds `δ`), Hypergeometric (the prior moments of the
//!   NC null model), and Exponential (the Disparity Filter null model).
//! * **Descriptive statistics** ([`descriptive`]) and empirical distribution
//!   functions used to reproduce Figure 5 of the paper.
//! * **Correlation** ([`correlation`]): Pearson, log–log Pearson (Figure 6) and
//!   Spearman rank correlation (the Stability criterion of Figure 8), backed by
//!   tie-aware ranking ([`rank`]).
//! * **Ordinary least squares regression** ([`regression`]) with `R²`, used by the
//!   Quality criterion (Table II) and the case study of Section VI.
//! * **Small dense linear algebra** ([`linalg`]): just enough matrix machinery
//!   (Cholesky and Gaussian elimination) to solve normal equations.
//! * **Bayesian helpers** ([`bayes`]): the Beta–Binomial conjugate update at the
//!   heart of the Noise-Corrected backbone (Eqs. 3–8 of the paper).
//! * **Sampling utilities** ([`sampling`]): seeded normal / binomial / Poisson
//!   sampling used by the synthetic dataset generators.
//!
//! Everything is implemented from scratch on `f64`, with deterministic behaviour
//! given a seeded random number generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayes;
pub mod correlation;
pub mod descriptive;
pub mod distributions;
pub mod error;
pub mod histogram;
pub mod linalg;
pub mod rank;
pub mod regression;
pub mod sampling;
pub mod special;

pub use bayes::BetaBinomialModel;
pub use correlation::{log_log_pearson, pearson, spearman};
pub use descriptive::{mean, median, quantile, std_dev, variance};
pub use error::{StatsError, StatsResult};
pub use linalg::Matrix;
pub use regression::{OlsFit, OlsModel};
