//! Beta distribution.

use super::ContinuousDistribution;
use crate::error::{StatsError, StatsResult};
use crate::special::{ln_beta, regularized_incomplete_beta};

/// A Beta distribution `BETA[α, β]` on the unit interval.
///
/// The Beta distribution is the conjugate prior of the Binomial distribution
/// and therefore the prior/posterior family used by the Noise-Corrected
/// backbone for the edge-formation probability `P_ij` (Eq. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Create a Beta distribution with shape parameters `alpha, beta > 0`.
    pub fn new(alpha: f64, beta: f64) -> StatsResult<Self> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(StatsError::InvalidParameter {
                parameter: "alpha",
                message: format!("must be finite and positive, got {alpha}"),
            });
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(StatsError::InvalidParameter {
                parameter: "beta",
                message: format!("must be finite and positive, got {beta}"),
            });
        }
        Ok(Self { alpha, beta })
    }

    /// Construct a Beta distribution from a desired mean `μ ∈ (0, 1)` and
    /// variance `σ² < μ(1 − μ)` by the method of moments (Eqs. 7–8 of the paper):
    ///
    /// ```text
    /// α = μ²/σ² (1 − μ) − μ
    /// β = μ ((1 − μ)²/σ² + 1) − 1
    /// ```
    pub fn from_mean_and_variance(mean: f64, variance: f64) -> StatsResult<Self> {
        if !(mean > 0.0 && mean < 1.0) {
            return Err(StatsError::InvalidParameter {
                parameter: "mean",
                message: format!("must lie strictly inside (0, 1), got {mean}"),
            });
        }
        if !(variance > 0.0 && variance < mean * (1.0 - mean)) {
            return Err(StatsError::InvalidParameter {
                parameter: "variance",
                message: format!(
                    "must lie strictly inside (0, mean·(1−mean)) = (0, {}), got {variance}",
                    mean * (1.0 - mean)
                ),
            });
        }
        let alpha = mean * mean / variance * (1.0 - mean) - mean;
        let beta = mean * ((1.0 - mean) * (1.0 - mean) / variance + 1.0) - 1.0;
        Self::new(alpha, beta)
    }

    /// First shape parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Second shape parameter `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Posterior distribution after observing `successes` successes out of
    /// `trials` Bernoulli trials (the Beta–Binomial conjugate update of Eq. 4):
    /// `BETA[α + successes, β + trials − successes]`.
    pub fn posterior(&self, successes: f64, trials: f64) -> StatsResult<Self> {
        if successes < 0.0 || trials < successes {
            return Err(StatsError::InvalidParameter {
                parameter: "successes/trials",
                message: format!(
                    "need 0 ≤ successes ≤ trials, got successes={successes}, trials={trials}"
                ),
            });
        }
        Self::new(self.alpha + successes, self.beta + trials - successes)
    }
}

impl ContinuousDistribution for Beta {
    fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if x == 0.0 || x == 1.0 {
            // Handle boundary carefully: density may diverge, is zero, or finite.
            return match (self.alpha, self.beta, x) {
                (a, _, 0.0) if a < 1.0 => f64::INFINITY,
                (a, _, 0.0) if a > 1.0 => 0.0,
                (_, b, 1.0) if b < 1.0 => f64::INFINITY,
                (_, b, 1.0) if b > 1.0 => 0.0,
                _ => (-ln_beta(self.alpha, self.beta)).exp(),
            };
        }
        ((self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta))
        .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            regularized_incomplete_beta(self.alpha, self.beta, x)
                .expect("parameters validated at construction")
        }
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn constructor_validates_parameters() {
        assert!(Beta::new(1.0, 1.0).is_ok());
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -2.0).is_err());
        assert!(Beta::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_special_case() {
        let b = Beta::new(1.0, 1.0).unwrap();
        assert_close(b.mean(), 0.5, 1e-12);
        assert_close(b.variance(), 1.0 / 12.0, 1e-12);
        assert_close(b.pdf(0.3), 1.0, 1e-12);
        assert_close(b.cdf(0.3), 0.3, 1e-12);
    }

    #[test]
    fn moments_match_formulas() {
        let b = Beta::new(2.0, 5.0).unwrap();
        assert_close(b.mean(), 2.0 / 7.0, 1e-12);
        assert_close(b.variance(), 10.0 / (49.0 * 8.0), 1e-12);
    }

    #[test]
    fn from_mean_and_variance_round_trips_moments() {
        let b = Beta::from_mean_and_variance(0.2, 0.01).unwrap();
        assert_close(b.mean(), 0.2, 1e-10);
        assert_close(b.variance(), 0.01, 1e-10);
    }

    #[test]
    fn from_mean_and_variance_matches_paper_formulas() {
        // Hand-computed from Eqs. 7–8 with μ = 0.3, σ² = 0.02.
        let mu = 0.3;
        let sigma2 = 0.02;
        let b = Beta::from_mean_and_variance(mu, sigma2).unwrap();
        let expected_alpha = mu * mu / sigma2 * (1.0 - mu) - mu;
        let expected_beta = mu * ((1.0 - mu) * (1.0 - mu) / sigma2 + 1.0) - 1.0;
        assert_close(b.alpha(), expected_alpha, 1e-12);
        assert_close(b.beta(), expected_beta, 1e-12);
    }

    #[test]
    fn from_mean_and_variance_rejects_impossible_moments() {
        assert!(Beta::from_mean_and_variance(0.5, 0.3).is_err()); // var ≥ μ(1−μ)
        assert!(Beta::from_mean_and_variance(0.0, 0.01).is_err());
        assert!(Beta::from_mean_and_variance(1.0, 0.01).is_err());
        assert!(Beta::from_mean_and_variance(0.5, 0.0).is_err());
    }

    #[test]
    fn posterior_update_is_conjugate() {
        let prior = Beta::new(2.0, 3.0).unwrap();
        let post = prior.posterior(4.0, 10.0).unwrap();
        assert_close(post.alpha(), 6.0, 1e-12);
        assert_close(post.beta(), 9.0, 1e-12);
        assert!(prior.posterior(5.0, 3.0).is_err());
        assert!(prior.posterior(-1.0, 3.0).is_err());
    }

    #[test]
    fn cdf_is_monotone() {
        let b = Beta::new(2.5, 4.5).unwrap();
        let mut previous = -1.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let c = b.cdf(x);
            assert!(c >= previous);
            previous = c;
        }
        assert_close(b.cdf(0.0), 0.0, 1e-15);
        assert_close(b.cdf(1.0), 1.0, 1e-15);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoid integration sanity check.
        let b = Beta::new(3.0, 2.0).unwrap();
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let x0 = i as f64 / n as f64;
            let x1 = (i + 1) as f64 / n as f64;
            sum += 0.5 * (b.pdf(x0) + b.pdf(x1)) * (x1 - x0);
        }
        assert_close(sum, 1.0, 1e-6);
    }

    #[test]
    fn pdf_boundary_behaviour() {
        assert_eq!(Beta::new(0.5, 2.0).unwrap().pdf(0.0), f64::INFINITY);
        assert_eq!(Beta::new(2.0, 0.5).unwrap().pdf(1.0), f64::INFINITY);
        assert_eq!(Beta::new(2.0, 2.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Beta::new(2.0, 2.0).unwrap().pdf(-0.1), 0.0);
        assert_eq!(Beta::new(2.0, 2.0).unwrap().pdf(1.1), 0.0);
    }
}
