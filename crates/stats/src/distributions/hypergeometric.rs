//! Hypergeometric distribution.

use super::DiscreteDistribution;
use crate::error::{StatsError, StatsResult};
use crate::special::ln_binomial_coefficient;

/// A hypergeometric distribution.
///
/// Describes the number of successes in `draws` draws *without replacement*
/// from a population of size `population` containing `successes` success
/// states.
///
/// In the Noise-Corrected backbone the hypergeometric distribution provides
/// the *prior* mean and variance of the edge probability `P_ij`: each unit of
/// weight emitted by node `i` picks its destination at random from the pool of
/// `N_..` interaction endpoints, of which `N_.j` belong to node `j`. The
/// resulting prior moments (paper, Section IV) are
///
/// ```text
/// E[P_ij] = N_i. N_.j / N_..²
/// V[P_ij] = N_i. N_.j (N_.. − N_i.)(N_.. − N_.j) / (N_..⁴ (N_.. − 1))
/// ```
///
/// which are exactly `E[X]/N_..` and `V[X]/N_..²` for
/// `X ~ Hypergeometric(population = N_.., successes = N_.j, draws = N_i.)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    population: u64,
    successes: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Create a hypergeometric distribution.
    ///
    /// Requires `successes ≤ population` and `draws ≤ population`.
    pub fn new(population: u64, successes: u64, draws: u64) -> StatsResult<Self> {
        if successes > population {
            return Err(StatsError::InvalidParameter {
                parameter: "successes",
                message: format!("successes ({successes}) exceeds population ({population})"),
            });
        }
        if draws > population {
            return Err(StatsError::InvalidParameter {
                parameter: "draws",
                message: format!("draws ({draws}) exceeds population ({population})"),
            });
        }
        Ok(Self {
            population,
            successes,
            draws,
        })
    }

    /// Population size `N`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of success states `K` in the population.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of draws `n`.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Smallest value with non-zero probability: `max(0, n + K − N)`.
    pub fn min_value(&self) -> u64 {
        (self.draws + self.successes).saturating_sub(self.population)
    }

    /// Largest value with non-zero probability: `min(n, K)`.
    pub fn max_value(&self) -> u64 {
        self.draws.min(self.successes)
    }
}

impl DiscreteDistribution for Hypergeometric {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        if k < self.min_value() || k > self.max_value() {
            return f64::NEG_INFINITY;
        }
        ln_binomial_coefficient(self.successes, k)
            + ln_binomial_coefficient(self.population - self.successes, self.draws - k)
            - ln_binomial_coefficient(self.population, self.draws)
    }

    fn cdf(&self, k: u64) -> f64 {
        if k >= self.max_value() {
            return 1.0;
        }
        let mut total = 0.0;
        for value in self.min_value()..=k {
            total += self.pmf(value);
        }
        total.min(1.0)
    }

    fn mean(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.draws as f64 * self.successes as f64 / self.population as f64
    }

    fn variance(&self) -> f64 {
        if self.population <= 1 {
            return 0.0;
        }
        let n = self.population as f64;
        let k = self.successes as f64;
        let d = self.draws as f64;
        d * (k / n) * ((n - k) / n) * ((n - d) / (n - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn constructor_validates() {
        assert!(Hypergeometric::new(10, 3, 4).is_ok());
        assert!(Hypergeometric::new(10, 11, 4).is_err());
        assert!(Hypergeometric::new(10, 3, 11).is_err());
    }

    #[test]
    fn support_bounds() {
        let h = Hypergeometric::new(10, 7, 6).unwrap();
        assert_eq!(h.min_value(), 3); // 6 + 7 − 10
        assert_eq!(h.max_value(), 6);
        assert_eq!(h.pmf(2), 0.0);
        assert_eq!(h.pmf(7), 0.0);
    }

    #[test]
    fn pmf_matches_hand_computed_value() {
        // Population 10, 4 successes, 5 draws, P(X = 2) = C(4,2) C(6,3) / C(10,5)
        let h = Hypergeometric::new(10, 4, 5).unwrap();
        let expected = 6.0 * 20.0 / 252.0;
        assert_close(h.pmf(2), expected, 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let h = Hypergeometric::new(30, 12, 9).unwrap();
        let total: f64 = (0..=9).map(|k| h.pmf(k)).sum();
        assert_close(total, 1.0, 1e-10);
        assert_close(h.cdf(9), 1.0, 1e-10);
    }

    #[test]
    fn moments_match_formulas() {
        let h = Hypergeometric::new(50, 20, 10).unwrap();
        assert_close(h.mean(), 10.0 * 20.0 / 50.0, 1e-12);
        let n = 50.0;
        let expected_var = 10.0 * (20.0 / n) * (30.0 / n) * (40.0 / (n - 1.0));
        assert_close(h.variance(), expected_var, 1e-12);
    }

    #[test]
    fn matches_paper_prior_moments() {
        // The NC prior: E[P_ij] = Ni. N.j / N..², V[P_ij] = V[X]/N..².
        let n_total = 1000u64;
        let n_out_i = 120u64; // draws
        let n_in_j = 75u64; // successes
        let h = Hypergeometric::new(n_total, n_in_j, n_out_i).unwrap();

        let nt = n_total as f64;
        let ni = n_out_i as f64;
        let nj = n_in_j as f64;

        let prior_mean = h.mean() / nt;
        let expected_mean = ni * nj / (nt * nt);
        assert_close(prior_mean, expected_mean, 1e-12);

        let prior_var = h.variance() / (nt * nt);
        let expected_var = ni * nj * (nt - ni) * (nt - nj) / (nt.powi(4) * (nt - 1.0));
        assert_close(prior_var, expected_var, 1e-12);
    }

    #[test]
    fn degenerate_population() {
        let h = Hypergeometric::new(0, 0, 0).unwrap();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.variance(), 0.0);
    }
}
