//! Normal (Gaussian) distribution.

use super::ContinuousDistribution;
use crate::error::{StatsError, StatsResult};
use crate::special::{standard_normal_cdf, standard_normal_quantile};

/// A normal distribution parameterised by mean and standard deviation.
///
/// Used throughout the backboning crates to translate the Noise-Corrected
/// threshold parameter `δ` (a number of standard deviations) into one-tailed
/// p-values and back, mirroring the paper's suggested values
/// `δ ∈ {1.28, 1.64, 2.32}` for `p ∈ {0.1, 0.05, 0.01}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution with the given mean and standard deviation.
    ///
    /// Returns an error when `std_dev` is not strictly positive or either
    /// parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> StatsResult<Self> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                parameter: "mean",
                message: format!("must be finite, got {mean}"),
            });
        }
        if !(std_dev.is_finite() && std_dev > 0.0) {
            return Err(StatsError::InvalidParameter {
                parameter: "std_dev",
                message: format!("must be finite and positive, got {std_dev}"),
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Quantile function (inverse CDF).
    pub fn quantile(&self, p: f64) -> StatsResult<f64> {
        Ok(self.mean + self.std_dev * standard_normal_quantile(p)?)
    }

    /// One-tailed p-value of observing a value at least `delta` standard
    /// deviations above the mean: `P(X > mean + delta·sd)`.
    pub fn upper_tail_p_value(delta: f64) -> f64 {
        1.0 - standard_normal_cdf(delta)
    }

    /// Number of standard deviations corresponding to a one-tailed p-value,
    /// i.e. the `δ` such that `P(X > mean + δ·sd) = p`.
    pub fn delta_for_p_value(p: f64) -> StatsResult<f64> {
        standard_normal_quantile(1.0 - p)
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        standard_normal_cdf((x - self.mean) / self.std_dev)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_parameters() {
        assert!(Normal::new(0.0, 1.0).is_ok());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn standard_normal_moments() {
        let n = Normal::standard();
        assert_eq!(n.mean(), 0.0);
        assert_eq!(n.variance(), 1.0);
    }

    #[test]
    fn pdf_peak_at_mean() {
        let n = Normal::new(2.0, 3.0).unwrap();
        let peak = n.pdf(2.0);
        assert!(peak > n.pdf(1.0));
        assert!(peak > n.pdf(3.0));
        assert!((peak - 1.0 / (3.0 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        let n = Normal::new(0.0, 2.0).unwrap();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(n.cdf(1.0) > n.cdf(0.5));
        assert!((n.cdf(-1.5) + n.cdf(1.5) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn quantile_round_trip() {
        let n = Normal::new(5.0, 0.5).unwrap();
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_p_value_correspondence() {
        // The paper's δ = 1.28 / 1.64 / 2.32 ↔ p ≈ 0.1 / 0.05 / 0.01.
        assert!((Normal::upper_tail_p_value(1.281_551_6) - 0.1).abs() < 1e-6);
        assert!((Normal::upper_tail_p_value(1.644_853_6) - 0.05).abs() < 1e-6);
        assert!((Normal::upper_tail_p_value(2.326_347_9) - 0.01).abs() < 1e-6);
        assert!((Normal::delta_for_p_value(0.05).unwrap() - 1.644_853_6).abs() < 1e-5);
    }
}
