//! Binomial distribution.

use super::DiscreteDistribution;
use crate::error::{StatsError, StatsResult};
use crate::special::{ln_binomial_coefficient, regularized_incomplete_beta};

/// A Binomial distribution `Bin(n, p)`.
///
/// The Noise-Corrected backbone's null model assumes that an observed edge
/// weight `N_ij` is the number of successes among `N_..` unitary interactions,
/// each succeeding with probability `P_ij` (Eq. 2 of the paper). This type also
/// provides the direct binomial p-value described in the paper's footnote 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create a binomial distribution with `n` trials and success probability `p`.
    pub fn new(n: u64, p: f64) -> StatsResult<Self> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidParameter {
                parameter: "p",
                message: format!("must lie in [0, 1], got {p}"),
            });
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn success_probability(&self) -> f64 {
        self.p
    }

    /// Upper-tail p-value `P(X ≥ k)`.
    ///
    /// This is the quantity used by the "direct p-value" variant of the
    /// Noise-Corrected backbone: how likely the observed weight (or a larger
    /// one) is under the null model.
    pub fn upper_tail(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        // P(X ≥ k) = I_p(k, n − k + 1)
        regularized_incomplete_beta(k as f64, (self.n - k) as f64 + 1.0, self.p)
            .expect("parameters validated at construction")
    }
}

impl DiscreteDistribution for Binomial {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_binomial_coefficient(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0;
        }
        // P(X ≤ k) = I_{1−p}(n − k, k + 1)
        regularized_incomplete_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
            .expect("parameters validated at construction")
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn constructor_validates_probability() {
        assert!(Binomial::new(10, 0.5).is_ok());
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn moments() {
        let b = Binomial::new(20, 0.3).unwrap();
        assert_close(b.mean(), 6.0, 1e-12);
        assert_close(b.variance(), 20.0 * 0.3 * 0.7, 1e-12);
    }

    #[test]
    fn pmf_matches_hand_computed_values() {
        let b = Binomial::new(5, 0.5).unwrap();
        assert_close(b.pmf(0), 1.0 / 32.0, 1e-12);
        assert_close(b.pmf(1), 5.0 / 32.0, 1e-12);
        assert_close(b.pmf(2), 10.0 / 32.0, 1e-12);
        assert_close(b.pmf(5), 1.0 / 32.0, 1e-12);
        assert_eq!(b.pmf(6), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(30, 0.37).unwrap();
        let total: f64 = (0..=30).map(|k| b.pmf(k)).sum();
        assert_close(total, 1.0, 1e-10);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(12, 0.25).unwrap();
        let mut running = 0.0;
        for k in 0..=12 {
            running += b.pmf(k);
            assert_close(b.cdf(k), running, 1e-10);
        }
    }

    #[test]
    fn upper_tail_complements_cdf() {
        let b = Binomial::new(15, 0.6).unwrap();
        for k in 1..=15u64 {
            assert_close(b.upper_tail(k), 1.0 - b.cdf(k - 1), 1e-10);
        }
        assert_close(b.upper_tail(0), 1.0, 1e-15);
        assert_close(b.upper_tail(16), 0.0, 1e-15);
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0).unwrap();
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        assert_eq!(zero.cdf(0), 1.0);

        let one = Binomial::new(10, 1.0).unwrap();
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(9), 0.0);
        assert_eq!(one.cdf(9), 0.0);
        assert_eq!(one.cdf(10), 1.0);
    }

    #[test]
    fn large_n_stays_finite() {
        // Typical magnitudes in the country networks: N.. can be in the billions.
        let b = Binomial::new(2_000_000_000, 1e-9).unwrap();
        assert!(b.pmf(2).is_finite());
        assert!(b.upper_tail(10) > 0.0);
        assert!(b.upper_tail(10) < 1.0);
        assert_close(b.mean(), 2.0, 1e-9);
    }
}
