//! Probability distributions used by the backboning algorithms and the
//! synthetic data generators.
//!
//! * [`Beta`] — conjugate prior of the Binomial edge-weight model (Eqs. 4–8 of
//!   the paper).
//! * [`Binomial`] — the Noise-Corrected null model for edge weights (Eq. 2) and
//!   the direct p-value variant mentioned in the paper's footnote 2.
//! * [`Normal`] — confidence thresholds `δ` and their p-value equivalents.
//! * [`Hypergeometric`] — provides the prior mean and variance of `P_ij` in the
//!   Noise-Corrected null model.
//! * [`Exponential`] — the implicit null model of the Disparity Filter.
//! * [`Poisson`] — used by the dataset generators to add count-data noise.

mod beta;
mod binomial;
mod exponential;
mod hypergeometric;
mod normal;
mod poisson;

pub use beta::Beta;
pub use binomial::Binomial;
pub use exponential::Exponential;
pub use hypergeometric::Hypergeometric;
pub use normal::Normal;
pub use poisson::Poisson;

/// Common interface for continuous univariate distributions.
pub trait ContinuousDistribution {
    /// Probability density function evaluated at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function evaluated at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Mean of the distribution.
    fn mean(&self) -> f64;
    /// Variance of the distribution.
    fn variance(&self) -> f64;
    /// Standard deviation of the distribution.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Survival function `1 − CDF(x)`.
    fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// Common interface for discrete univariate distributions over the
/// non-negative integers.
pub trait DiscreteDistribution {
    /// Probability mass function evaluated at `k`.
    fn pmf(&self, k: u64) -> f64;
    /// Natural logarithm of the probability mass function at `k`.
    fn ln_pmf(&self, k: u64) -> f64;
    /// Cumulative distribution function `P(X ≤ k)`.
    fn cdf(&self, k: u64) -> f64;
    /// Mean of the distribution.
    fn mean(&self) -> f64;
    /// Variance of the distribution.
    fn variance(&self) -> f64;
    /// Survival function `P(X > k) = 1 − CDF(k)`.
    fn survival(&self, k: u64) -> f64 {
        1.0 - self.cdf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_default_methods() {
        let n = Normal::standard();
        assert!((n.std_dev() - 1.0).abs() < 1e-12);
        assert!((n.survival(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discrete_default_survival() {
        let b = Binomial::new(10, 0.5).unwrap();
        let total = b.cdf(4) + b.survival(4);
        assert!((total - 1.0).abs() < 1e-12);
    }
}
