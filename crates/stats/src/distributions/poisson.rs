//! Poisson distribution.

use super::DiscreteDistribution;
use crate::error::{StatsError, StatsResult};
use crate::special::{ln_gamma, regularized_upper_gamma};

/// A Poisson distribution with mean `λ`.
///
/// Used by the synthetic dataset generators: the country-network edge weights
/// are latent gravity-model intensities observed through count noise, for which
/// the Poisson distribution (the large-`n`, small-`p` limit of the paper's
/// binomial null model) is the natural choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution with mean `λ > 0`.
    pub fn new(lambda: f64) -> StatsResult<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(StatsError::InvalidParameter {
                parameter: "lambda",
                message: format!("must be finite and positive, got {lambda}"),
            });
        }
        Ok(Self { lambda })
    }

    /// The mean parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl DiscreteDistribution for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        let k = k as f64;
        k * self.lambda.ln() - self.lambda - ln_gamma(k + 1.0)
    }

    fn cdf(&self, k: u64) -> f64 {
        // P(X ≤ k) = Q(k + 1, λ) where Q is the regularized upper incomplete gamma.
        regularized_upper_gamma(k as f64 + 1.0, self.lambda)
            .expect("parameters validated at construction")
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn constructor_validates_lambda() {
        assert!(Poisson::new(1.0).is_ok());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
    }

    #[test]
    fn pmf_known_values() {
        let p = Poisson::new(2.0).unwrap();
        assert_close(p.pmf(0), (-2.0f64).exp(), 1e-12);
        assert_close(p.pmf(1), 2.0 * (-2.0f64).exp(), 1e-12);
        assert_close(p.pmf(2), 2.0 * (-2.0f64).exp(), 1e-12);
        assert_close(p.pmf(3), 4.0 / 3.0 * (-2.0f64).exp(), 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(5.5).unwrap();
        let total: f64 = (0..100).map(|k| p.pmf(k)).sum();
        assert_close(total, 1.0, 1e-10);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let p = Poisson::new(3.7).unwrap();
        let mut running = 0.0;
        for k in 0..25u64 {
            running += p.pmf(k);
            assert_close(p.cdf(k), running, 1e-9);
        }
    }

    #[test]
    fn moments() {
        let p = Poisson::new(7.3).unwrap();
        assert_close(p.mean(), 7.3, 1e-12);
        assert_close(p.variance(), 7.3, 1e-12);
    }
}
