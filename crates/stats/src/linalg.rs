//! Small dense linear algebra: just enough to solve OLS normal equations.

use crate::error::{StatsError, StatsResult};

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix.
    pub fn identity(size: usize) -> Self {
        let mut m = Matrix::zeros(size, size);
        for i in 0..size {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Create a matrix from row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> StatsResult<Self> {
        if data.len() != rows * cols {
            return Err(StatsError::LinearAlgebra {
                message: format!(
                    "expected {} elements for a {rows}x{cols} matrix, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut result = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                result.set(j, i, self.get(i, j));
            }
        }
        result
    }

    /// Matrix–matrix product.
    pub fn matmul(&self, other: &Matrix) -> StatsResult<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::LinearAlgebra {
                message: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut result = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let value = result.get(i, j) + aik * other.get(k, j);
                    result.set(i, j, value);
                }
            }
        }
        Ok(result)
    }

    /// Matrix–vector product.
    pub fn matvec(&self, vector: &[f64]) -> StatsResult<Vec<f64>> {
        if self.cols != vector.len() {
            return Err(StatsError::LinearAlgebra {
                message: format!(
                    "cannot multiply {}x{} matrix by vector of length {}",
                    self.rows,
                    self.cols,
                    vector.len()
                ),
            });
        }
        let mut result = vec![0.0; self.rows];
        for (i, slot) in result.iter_mut().enumerate() {
            *slot = vector
                .iter()
                .enumerate()
                .map(|(j, &v)| self.get(i, j) * v)
                .sum();
        }
        Ok(result)
    }

    /// Cholesky decomposition of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `A = L Lᵀ`.
    pub fn cholesky(&self) -> StatsResult<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::LinearAlgebra {
                message: "Cholesky decomposition requires a square matrix".to_string(),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::LinearAlgebra {
                            message: format!(
                                "matrix is not positive definite (pivot {sum} at row {i})"
                            ),
                        });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solve `A x = b` for symmetric positive-definite `A` using the Cholesky
    /// decomposition; falls back to Gaussian elimination with partial pivoting
    /// when the matrix is not positive definite.
    pub fn solve(&self, b: &[f64]) -> StatsResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(StatsError::LinearAlgebra {
                message: "solve requires a square matrix".to_string(),
            });
        }
        if b.len() != self.rows {
            return Err(StatsError::LinearAlgebra {
                message: format!(
                    "right-hand side has length {} but matrix is {}x{}",
                    b.len(),
                    self.rows,
                    self.cols
                ),
            });
        }
        match self.cholesky() {
            Ok(l) => {
                // Forward substitution: L y = b.
                let n = self.rows;
                let mut y = vec![0.0; n];
                for i in 0..n {
                    let settled: f64 = y
                        .iter()
                        .enumerate()
                        .take(i)
                        .map(|(k, &yk)| l.get(i, k) * yk)
                        .sum();
                    y[i] = (b[i] - settled) / l.get(i, i);
                }
                // Back substitution: Lᵀ x = y.
                let mut x = vec![0.0; n];
                for i in (0..n).rev() {
                    let settled: f64 = x
                        .iter()
                        .enumerate()
                        .skip(i + 1)
                        .map(|(k, &xk)| l.get(k, i) * xk)
                        .sum();
                    x[i] = (y[i] - settled) / l.get(i, i);
                }
                Ok(x)
            }
            Err(_) => self.solve_gaussian(b),
        }
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting.
    pub fn solve_gaussian(&self, b: &[f64]) -> StatsResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(StatsError::LinearAlgebra {
                message: "solve_gaussian requires a square matrix".to_string(),
            });
        }
        let n = self.rows;
        if b.len() != n {
            return Err(StatsError::LinearAlgebra {
                message: "right-hand side length mismatch".to_string(),
            });
        }
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut rhs = b.to_vec();

        for col in 0..n {
            // Partial pivoting.
            let mut pivot_row = col;
            let mut pivot_value = a[col * n + col].abs();
            for row in (col + 1)..n {
                let candidate = a[row * n + col].abs();
                if candidate > pivot_value {
                    pivot_value = candidate;
                    pivot_row = row;
                }
            }
            if pivot_value < 1e-12 {
                return Err(StatsError::LinearAlgebra {
                    message: format!("matrix is singular or nearly singular at column {col}"),
                });
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                rhs.swap(col, pivot_row);
            }
            // Elimination.
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                rhs[row] -= factor * rhs[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = rhs[i];
            for j in (i + 1)..n {
                sum -= a[i * n + j] * x[j];
            }
            x[i] = sum / a[i * n + i];
        }
        Ok(x)
    }

    /// Inverse of a square matrix (via repeated solves). Intended for the small
    /// matrices appearing in OLS standard-error computations.
    pub fn inverse(&self) -> StatsResult<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::LinearAlgebra {
                message: "inverse requires a square matrix".to_string(),
            });
        }
        let n = self.rows;
        let mut inverse = Matrix::zeros(n, n);
        for col in 0..n {
            let mut unit = vec![0.0; n];
            unit[col] = 1.0;
            let column = self.solve(&unit)?;
            for (row, &value) in column.iter().enumerate() {
                inverse.set(row, col, value);
            }
        }
        Ok(inverse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert!(Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn identity_and_matmul() {
        let identity = Matrix::identity(3);
        let a = Matrix::from_rows(3, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).unwrap();
        let product = a.matmul(&identity).unwrap();
        assert_eq!(product, a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_close(c.get(0, 0), 58.0, 1e-12);
        assert_close(c.get(0, 1), 64.0, 1e-12);
        assert_close(c.get(1, 0), 139.0, 1e-12);
        assert_close(c.get(1, 1), 154.0, 1e-12);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_basic() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let result = a.matvec(&[5.0, 6.0]).unwrap();
        assert_eq!(result, vec![17.0, 39.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn cholesky_known_decomposition() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let l = a.cholesky().unwrap();
        assert_close(l.get(0, 0), 2.0, 1e-12);
        assert_close(l.get(1, 0), 1.0, 1e-12);
        assert_close(l.get(1, 1), 2.0f64.sqrt(), 1e-12);
        assert_close(l.get(0, 1), 0.0, 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_positive_definite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(a.cholesky().is_err());
        let rect = Matrix::zeros(2, 3);
        assert!(rect.cholesky().is_err());
    }

    #[test]
    fn solve_positive_definite_system() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 1.0, 1.0, 3.0, 0.0, 1.0, 0.0, 2.0]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (computed, expected) in x.iter().zip(x_true.iter()) {
            assert_close(*computed, *expected, 1e-10);
        }
    }

    #[test]
    fn solve_falls_back_to_gaussian_for_indefinite_matrix() {
        // Symmetric but indefinite matrix.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_gaussian_rejects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(a.solve_gaussian(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 1.0, 1.0, 3.0, 0.0, 1.0, 0.0, 2.0]).unwrap();
        let inv = a.inverse().unwrap();
        let product = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(product.get(i, j), expected, 1e-10);
            }
        }
    }
}
