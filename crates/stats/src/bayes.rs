//! Beta–Binomial conjugate Bayesian machinery.
//!
//! This module implements exactly the chain of Eqs. 3–8 of *Network Backboning
//! with Noisy Data*: given prior moments for the edge-formation probability
//! `P_ij` (derived from a hypergeometric null model), build the conjugate Beta
//! prior, update it with the observed edge weight, and read off the posterior
//! mean and variance that feed into the Noise-Corrected variance estimate.

use crate::distributions::{Beta, ContinuousDistribution};
use crate::error::{StatsError, StatsResult};

/// A Beta–Binomial model for one edge's interaction probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaBinomialModel {
    prior: Beta,
}

impl BetaBinomialModel {
    /// Build the model from prior mean and variance (Eqs. 5–8 of the paper).
    pub fn from_prior_moments(mean: f64, variance: f64) -> StatsResult<Self> {
        Ok(BetaBinomialModel {
            prior: Beta::from_mean_and_variance(mean, variance)?,
        })
    }

    /// Build the model directly from Beta shape parameters.
    pub fn from_shape(alpha: f64, beta: f64) -> StatsResult<Self> {
        Ok(BetaBinomialModel {
            prior: Beta::new(alpha, beta)?,
        })
    }

    /// Build the paper's hypergeometric-motivated prior for an edge `(i, j)`
    /// given the node strengths and total weight:
    ///
    /// ```text
    /// E[P_ij] = N_i. N_.j / N_..²
    /// V[P_ij] = N_i. N_.j (N_.. − N_i.)(N_.. − N_.j) / (N_..⁴ (N_.. − 1))
    /// ```
    pub fn edge_prior(out_strength: f64, in_strength: f64, total_weight: f64) -> StatsResult<Self> {
        if total_weight <= 1.0 {
            return Err(StatsError::InvalidParameter {
                parameter: "total_weight",
                message: format!("total network weight must exceed 1, got {total_weight}"),
            });
        }
        if out_strength <= 0.0 || in_strength <= 0.0 {
            return Err(StatsError::InvalidParameter {
                parameter: "out_strength/in_strength",
                message: format!(
                    "node strengths must be positive, got {out_strength} and {in_strength}"
                ),
            });
        }
        let mean = out_strength * in_strength / (total_weight * total_weight);
        let variance = out_strength
            * in_strength
            * (total_weight - out_strength)
            * (total_weight - in_strength)
            / (total_weight.powi(4) * (total_weight - 1.0));
        Self::from_prior_moments(mean, variance)
    }

    /// The prior distribution.
    pub fn prior(&self) -> Beta {
        self.prior
    }

    /// The posterior distribution after observing `successes` successes in
    /// `trials` Bernoulli trials (edge weight `N_ij` out of `N_..` interactions).
    pub fn posterior(&self, successes: f64, trials: f64) -> StatsResult<Beta> {
        self.prior.posterior(successes, trials)
    }

    /// Posterior mean of `P_ij` after the observation.
    pub fn posterior_mean(&self, successes: f64, trials: f64) -> StatsResult<f64> {
        Ok(self.posterior(successes, trials)?.mean())
    }

    /// Posterior variance of `P_ij` after the observation.
    pub fn posterior_variance(&self, successes: f64, trials: f64) -> StatsResult<f64> {
        Ok(self.posterior(successes, trials)?.variance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn prior_moments_round_trip() {
        let model = BetaBinomialModel::from_prior_moments(0.1, 0.005).unwrap();
        assert_close(model.prior().mean(), 0.1, 1e-10);
        assert_close(model.prior().variance(), 0.005, 1e-10);
    }

    #[test]
    fn edge_prior_matches_paper_formulas() {
        let (ni, nj, nt) = (120.0, 75.0, 1000.0);
        let model = BetaBinomialModel::edge_prior(ni, nj, nt).unwrap();
        let expected_mean = ni * nj / (nt * nt);
        let expected_var = ni * nj * (nt - ni) * (nt - nj) / (nt.powi(4) * (nt - 1.0));
        assert_close(model.prior().mean(), expected_mean, 1e-10);
        assert_close(model.prior().variance(), expected_var, 1e-12);
    }

    #[test]
    fn edge_prior_rejects_degenerate_inputs() {
        assert!(BetaBinomialModel::edge_prior(0.0, 10.0, 100.0).is_err());
        assert!(BetaBinomialModel::edge_prior(10.0, 10.0, 1.0).is_err());
    }

    #[test]
    fn posterior_shifts_towards_observation() {
        let model = BetaBinomialModel::edge_prior(50.0, 50.0, 1000.0).unwrap();
        let prior_mean = model.prior().mean(); // 0.0025
                                               // A much larger observed frequency pulls the posterior mean upward.
        let posterior_mean = model.posterior_mean(100.0, 1000.0).unwrap();
        assert!(posterior_mean > prior_mean);
        assert!(posterior_mean < 0.1 + 1e-9); // but not beyond the empirical frequency
    }

    #[test]
    fn zero_weight_edges_have_positive_posterior_mean_and_variance() {
        // The whole point of the Bayesian framework (paper, Section IV): when
        // N_ij = 0 the naive estimator degenerates to zero variance, but the
        // posterior stays strictly positive.
        let model = BetaBinomialModel::edge_prior(10.0, 10.0, 10_000.0).unwrap();
        let mean = model.posterior_mean(0.0, 10_000.0).unwrap();
        let variance = model.posterior_variance(0.0, 10_000.0).unwrap();
        assert!(mean > 0.0);
        assert!(variance > 0.0);
    }

    #[test]
    fn posterior_variance_shrinks_with_more_data() {
        let model = BetaBinomialModel::from_prior_moments(0.2, 0.01).unwrap();
        let small_sample = model.posterior_variance(2.0, 10.0).unwrap();
        let large_sample = model.posterior_variance(200.0, 1000.0).unwrap();
        assert!(large_sample < small_sample);
    }

    #[test]
    fn from_shape_exposes_parameters() {
        let model = BetaBinomialModel::from_shape(2.0, 8.0).unwrap();
        assert_close(model.prior().mean(), 0.2, 1e-12);
        let posterior = model.posterior(3.0, 10.0).unwrap();
        assert_close(posterior.alpha(), 5.0, 1e-12);
        assert_close(posterior.beta(), 15.0, 1e-12);
    }
}
