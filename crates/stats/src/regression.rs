//! Ordinary least squares regression.
//!
//! The paper's Quality criterion (Table II) fits OLS models of the form
//! `log(N_ij + 1) = β X_ij + ε_ij` on the full network and on the backbone,
//! and compares the two `R²` values. The case study of Section VI fits a
//! linear flow-prediction model. This module provides the estimator used for
//! both.

use crate::error::{StatsError, StatsResult};
use crate::linalg::Matrix;

/// A fitted OLS model.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Estimated coefficients, in the column order of the design matrix
    /// (intercept first when the model was built with an intercept).
    pub coefficients: Vec<f64>,
    /// Coefficient of determination `R²`.
    pub r_squared: f64,
    /// Adjusted `R²`.
    pub adjusted_r_squared: f64,
    /// Residual sum of squares.
    pub residual_sum_of_squares: f64,
    /// Total sum of squares of the response around its mean.
    pub total_sum_of_squares: f64,
    /// Number of observations used in the fit.
    pub observations: usize,
    /// Number of estimated parameters (including the intercept if present).
    pub parameters: usize,
    /// Standard errors of the coefficients (same order as `coefficients`).
    pub standard_errors: Vec<f64>,
    /// Whether an intercept column was included.
    pub has_intercept: bool,
}

impl OlsFit {
    /// Predicted value for a single observation's predictor vector (excluding
    /// the intercept column, which is added automatically when present).
    pub fn predict(&self, predictors: &[f64]) -> StatsResult<f64> {
        let expected = if self.has_intercept {
            self.coefficients.len() - 1
        } else {
            self.coefficients.len()
        };
        if predictors.len() != expected {
            return Err(StatsError::Regression {
                message: format!("expected {expected} predictors, got {}", predictors.len()),
            });
        }
        let mut value = 0.0;
        let mut coefficient_index = 0;
        if self.has_intercept {
            value += self.coefficients[0];
            coefficient_index = 1;
        }
        for (i, &x) in predictors.iter().enumerate() {
            value += self.coefficients[coefficient_index + i] * x;
        }
        Ok(value)
    }

    /// Pearson correlation between fitted and observed values; equals
    /// `sqrt(R²)` for models with an intercept.
    pub fn fit_correlation(&self) -> f64 {
        self.r_squared.max(0.0).sqrt()
    }
}

/// Builder for an OLS regression: add named predictor columns, then fit
/// against a response vector.
#[derive(Debug, Clone)]
pub struct OlsModel {
    predictor_names: Vec<String>,
    columns: Vec<Vec<f64>>,
    intercept: bool,
}

impl Default for OlsModel {
    fn default() -> Self {
        Self::new()
    }
}

impl OlsModel {
    /// Create an empty model with an intercept.
    pub fn new() -> Self {
        OlsModel {
            predictor_names: Vec::new(),
            columns: Vec::new(),
            intercept: true,
        }
    }

    /// Create an empty model without an intercept.
    pub fn without_intercept() -> Self {
        OlsModel {
            predictor_names: Vec::new(),
            columns: Vec::new(),
            intercept: false,
        }
    }

    /// Add a named predictor column.
    pub fn predictor(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.predictor_names.push(name.into());
        self.columns.push(values);
        self
    }

    /// Names of the predictors, in design-matrix order (excluding the intercept).
    pub fn predictor_names(&self) -> &[String] {
        &self.predictor_names
    }

    /// Fit the model by ordinary least squares against the response `y`.
    pub fn fit(&self, y: &[f64]) -> StatsResult<OlsFit> {
        let n = y.len();
        if n == 0 {
            return Err(StatsError::EmptyInput {
                operation: "OlsModel::fit",
            });
        }
        for (name, column) in self.predictor_names.iter().zip(&self.columns) {
            if column.len() != n {
                return Err(StatsError::Regression {
                    message: format!(
                        "predictor `{name}` has {} rows but the response has {n}",
                        column.len()
                    ),
                });
            }
        }
        let k = self.columns.len() + usize::from(self.intercept);
        if k == 0 {
            return Err(StatsError::Regression {
                message: "model has no predictors and no intercept".to_string(),
            });
        }
        if n <= k {
            return Err(StatsError::Regression {
                message: format!("need more observations ({n}) than parameters ({k})"),
            });
        }

        // Build the design matrix.
        let mut design = Matrix::zeros(n, k);
        for row in 0..n {
            let mut col = 0;
            if self.intercept {
                design.set(row, 0, 1.0);
                col = 1;
            }
            for (j, column) in self.columns.iter().enumerate() {
                design.set(row, col + j, column[row]);
            }
        }

        // Normal equations: (XᵀX) β = Xᵀ y.
        let xt = design.transpose();
        let xtx = xt.matmul(&design)?;
        let xty = xt.matvec(y)?;
        let coefficients = xtx.solve(&xty).map_err(|e| StatsError::Regression {
            message: format!("design matrix is rank deficient: {e}"),
        })?;

        // Residuals and goodness of fit.
        let fitted = design.matvec(&coefficients)?;
        let mean_y = y.iter().sum::<f64>() / n as f64;
        let mut rss = 0.0;
        let mut tss = 0.0;
        for (observed, predicted) in y.iter().zip(&fitted) {
            rss += (observed - predicted) * (observed - predicted);
            tss += (observed - mean_y) * (observed - mean_y);
        }
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        let adjusted_r_squared = if n > k {
            1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / (n as f64 - k as f64)
        } else {
            r_squared
        };

        // Standard errors from σ² (XᵀX)⁻¹.
        let sigma2 = rss / (n as f64 - k as f64);
        let standard_errors = match xtx.inverse() {
            Ok(inv) => (0..k)
                .map(|i| (sigma2 * inv.get(i, i)).max(0.0).sqrt())
                .collect(),
            Err(_) => vec![f64::NAN; k],
        };

        Ok(OlsFit {
            coefficients,
            r_squared,
            adjusted_r_squared,
            residual_sum_of_squares: rss,
            total_sum_of_squares: tss,
            observations: n,
            parameters: k,
            standard_errors,
            has_intercept: self.intercept,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn perfect_linear_fit() {
        // y = 3 + 2x fits exactly.
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 + 2.0 * v).collect();
        let fit = OlsModel::new().predictor("x", x).fit(&y).unwrap();
        assert_close(fit.coefficients[0], 3.0, 1e-9);
        assert_close(fit.coefficients[1], 2.0, 1e-9);
        assert_close(fit.r_squared, 1.0, 1e-12);
        assert_close(fit.predict(&[10.0]).unwrap(), 23.0, 1e-9);
    }

    #[test]
    fn two_predictor_fit() {
        // y = 1 + 2 x1 − 3 x2 with a little deterministic structure.
        let n = 50;
        let x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() * 2.0).collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 + 2.0 * x1[i] - 3.0 * x2[i]).collect();
        let fit = OlsModel::new()
            .predictor("x1", x1)
            .predictor("x2", x2)
            .fit(&y)
            .unwrap();
        assert_close(fit.coefficients[0], 1.0, 1e-8);
        assert_close(fit.coefficients[1], 2.0, 1e-8);
        assert_close(fit.coefficients[2], -3.0, 1e-8);
        assert_close(fit.r_squared, 1.0, 1e-10);
        assert_eq!(fit.parameters, 3);
        assert_eq!(fit.observations, 50);
    }

    #[test]
    fn noisy_fit_has_r_squared_below_one() {
        // Deterministic "noise" that is orthogonal-ish to the predictor.
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * x[i] + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = OlsModel::new().predictor("x", x).fit(&y).unwrap();
        assert!(fit.r_squared > 0.9);
        assert!(fit.r_squared < 1.0);
        assert!(fit.adjusted_r_squared <= fit.r_squared);
        assert!(fit.residual_sum_of_squares > 0.0);
    }

    #[test]
    fn intercept_only_model_without_predictors_is_ok() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let fit = OlsModel::new().fit(&y).unwrap();
        assert_close(fit.coefficients[0], 2.5, 1e-12);
        assert_close(fit.r_squared, 0.0, 1e-12);
    }

    #[test]
    fn without_intercept_model() {
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 4.0 * v).collect();
        let fit = OlsModel::without_intercept()
            .predictor("x", x)
            .fit(&y)
            .unwrap();
        assert_eq!(fit.coefficients.len(), 1);
        assert_close(fit.coefficients[0], 4.0, 1e-9);
        assert!(!fit.has_intercept);
        assert_close(fit.predict(&[2.0]).unwrap(), 8.0, 1e-9);
    }

    #[test]
    fn errors_on_bad_input() {
        // Length mismatch.
        assert!(OlsModel::new()
            .predictor("x", vec![1.0, 2.0])
            .fit(&[1.0, 2.0, 3.0])
            .is_err());
        // Too few observations.
        assert!(OlsModel::new()
            .predictor("x", vec![1.0, 2.0])
            .fit(&[1.0, 2.0])
            .is_err());
        // Empty response.
        assert!(OlsModel::new().fit(&[]).is_err());
        // No predictors and no intercept.
        assert!(OlsModel::without_intercept().fit(&[1.0, 2.0]).is_err());
        // Collinear predictors.
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x2: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        assert!(OlsModel::new()
            .predictor("x", x)
            .predictor("2x", x2)
            .fit(&[1.0, 2.0, 3.0, 4.0, 5.0])
            .is_err());
    }

    #[test]
    fn predict_validates_arity() {
        let fit = OlsModel::new()
            .predictor("x", vec![1.0, 2.0, 3.0, 4.0])
            .fit(&[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        assert!(fit.predict(&[]).is_err());
        assert!(fit.predict(&[1.0, 2.0]).is_err());
        assert!(fit.predict(&[1.0]).is_ok());
    }

    #[test]
    fn standard_errors_are_finite_and_positive() {
        let n = 40;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1.13).sin() * 3.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 0.5 + 1.5 * x[i] + ((i * 7 % 5) as f64 - 2.0) * 0.1)
            .collect();
        let fit = OlsModel::new().predictor("x", x).fit(&y).unwrap();
        for se in &fit.standard_errors {
            assert!(se.is_finite());
            assert!(*se >= 0.0);
        }
    }

    #[test]
    fn fit_correlation_matches_sqrt_r_squared() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..30)
            .map(|i| i as f64 * 0.7 + if i % 3 == 0 { 2.0 } else { -1.0 })
            .collect();
        let fit = OlsModel::new().predictor("x", x).fit(&y).unwrap();
        assert_close(fit.fit_correlation(), fit.r_squared.sqrt(), 1e-12);
    }
}
