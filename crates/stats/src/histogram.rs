//! Empirical distribution helpers: histograms, CDFs and CCDFs.
//!
//! Figure 5 of the paper plots cumulative edge-weight distributions on
//! log-scaled axes; [`ccdf`] and [`LogHistogram`] reproduce those curves.

use crate::error::{StatsError, StatsResult};

/// A single point of an empirical (complementary) cumulative distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionPoint {
    /// The value at which the distribution is evaluated.
    pub value: f64,
    /// The cumulative share of observations.
    pub share: f64,
}

/// Empirical cumulative distribution function: for each distinct value `v`,
/// the share of observations `≤ v`.
pub fn ecdf(values: &[f64]) -> StatsResult<Vec<DistributionPoint>> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "ecdf" });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = sorted.len() as f64;
    let mut points = Vec::new();
    let mut index = 0;
    while index < sorted.len() {
        let value = sorted[index];
        let mut run_end = index + 1;
        while run_end < sorted.len() && sorted[run_end] == value {
            run_end += 1;
        }
        points.push(DistributionPoint {
            value,
            share: run_end as f64 / n,
        });
        index = run_end;
    }
    Ok(points)
}

/// Empirical complementary cumulative distribution function (CCDF): for each
/// distinct value `v`, the share of observations `≥ v`. This is the curve the
/// paper plots in Figure 5 (`CDF(Edge Weight)` on a log-log scale, read as a
/// survival function).
pub fn ccdf(values: &[f64]) -> StatsResult<Vec<DistributionPoint>> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "ccdf" });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ccdf input"));
    let n = sorted.len() as f64;
    let mut points = Vec::new();
    let mut index = 0;
    while index < sorted.len() {
        let value = sorted[index];
        let mut run_end = index + 1;
        while run_end < sorted.len() && sorted[run_end] == value {
            run_end += 1;
        }
        points.push(DistributionPoint {
            value,
            share: (sorted.len() - index) as f64 / n,
        });
        index = run_end;
    }
    Ok(points)
}

/// A histogram with logarithmically spaced bins, suitable for broadly
/// distributed edge weights spanning several orders of magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Lower edge of each bin.
    pub bin_edges: Vec<f64>,
    /// Number of observations falling into each bin (`bin_edges.len() − 1` entries).
    pub counts: Vec<usize>,
}

impl LogHistogram {
    /// Build a histogram with `bins` logarithmically spaced bins covering the
    /// strictly positive values of the input. Non-positive values are ignored.
    pub fn new(values: &[f64], bins: usize) -> StatsResult<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                parameter: "bins",
                message: "need at least one bin".to_string(),
            });
        }
        let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
        if positive.is_empty() {
            return Err(StatsError::EmptyInput {
                operation: "LogHistogram::new",
            });
        }
        let min = positive.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = positive.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (log_min, log_max) = if min == max {
            (min.ln() - 0.5, min.ln() + 0.5)
        } else {
            (min.ln(), max.ln())
        };
        let step = (log_max - log_min) / bins as f64;
        let bin_edges: Vec<f64> = (0..=bins)
            .map(|i| (log_min + step * i as f64).exp())
            .collect();
        let mut counts = vec![0usize; bins];
        for &value in &positive {
            let mut bin = (((value.ln() - log_min) / step).floor() as isize).max(0) as usize;
            if bin >= bins {
                bin = bins - 1;
            }
            counts[bin] += 1;
        }
        Ok(LogHistogram { bin_edges, counts })
    }

    /// Total number of binned observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Share of observations in each bin.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Geometric midpoint of each bin.
    pub fn bin_centers(&self) -> Vec<f64> {
        self.bin_edges
            .windows(2)
            .map(|w| (w[0] * w[1]).sqrt())
            .collect()
    }
}

/// A histogram with linearly spaced bins (used to reproduce the score
/// distributions of Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearHistogram {
    /// Lower edge of each bin.
    pub bin_edges: Vec<f64>,
    /// Number of observations in each bin.
    pub counts: Vec<usize>,
}

impl LinearHistogram {
    /// Build a histogram with `bins` equally spaced bins spanning `[min, max]`
    /// of the data.
    pub fn new(values: &[f64], bins: usize) -> StatsResult<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                parameter: "bins",
                message: "need at least one bin".to_string(),
            });
        }
        if values.is_empty() {
            return Err(StatsError::EmptyInput {
                operation: "LinearHistogram::new",
            });
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (low, high) = if min == max {
            (min - 0.5, max + 0.5)
        } else {
            (min, max)
        };
        let step = (high - low) / bins as f64;
        let bin_edges: Vec<f64> = (0..=bins).map(|i| low + step * i as f64).collect();
        let mut counts = vec![0usize; bins];
        for &value in values {
            let mut bin = (((value - low) / step).floor() as isize).max(0) as usize;
            if bin >= bins {
                bin = bins - 1;
            }
            counts[bin] += 1;
        }
        Ok(LinearHistogram { bin_edges, counts })
    }

    /// Share of observations in each bin.
    pub fn shares(&self) -> Vec<f64> {
        let total: usize = self.counts.iter().sum();
        let total = total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Midpoint of each bin.
    pub fn bin_centers(&self) -> Vec<f64> {
        self.bin_edges
            .windows(2)
            .map(|w| (w[0] + w[1]) / 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basic() {
        let points = ecdf(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].value, 1.0);
        assert!((points[0].share - 0.25).abs() < 1e-12);
        assert!((points[1].share - 0.75).abs() < 1e-12);
        assert!((points[2].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_basic() {
        let points = ccdf(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[0].share - 1.0).abs() < 1e-12);
        assert!((points[1].share - 0.75).abs() < 1e-12);
        assert!((points[2].share - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ccdf_is_non_increasing() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64).collect();
        let points = ccdf(&values).unwrap();
        for pair in points.windows(2) {
            assert!(pair[0].share >= pair[1].share);
            assert!(pair[0].value < pair[1].value);
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(ecdf(&[]).is_err());
        assert!(ccdf(&[]).is_err());
        assert!(LogHistogram::new(&[], 10).is_err());
        assert!(LinearHistogram::new(&[], 10).is_err());
    }

    #[test]
    fn log_histogram_covers_all_positive_values() {
        let values = [0.1, 1.0, 10.0, 100.0, 1000.0, -5.0, 0.0];
        let hist = LogHistogram::new(&values, 4).unwrap();
        assert_eq!(hist.total(), 5); // non-positive values ignored
        assert_eq!(hist.counts.len(), 4);
        assert_eq!(hist.bin_edges.len(), 5);
        let shares: f64 = hist.shares().iter().sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_single_value() {
        let hist = LogHistogram::new(&[5.0, 5.0, 5.0], 3).unwrap();
        assert_eq!(hist.total(), 3);
    }

    #[test]
    fn log_histogram_rejects_zero_bins() {
        assert!(LogHistogram::new(&[1.0], 0).is_err());
    }

    #[test]
    fn linear_histogram_counts_everything() {
        let values = [-2.0, -1.0, 0.0, 1.0, 2.0, 3.0];
        let hist = LinearHistogram::new(&values, 5).unwrap();
        let total: usize = hist.counts.iter().sum();
        assert_eq!(total, values.len());
        assert_eq!(hist.bin_centers().len(), 5);
    }

    #[test]
    fn linear_histogram_single_value() {
        let hist = LinearHistogram::new(&[3.0], 4).unwrap();
        let total: usize = hist.counts.iter().sum();
        assert_eq!(total, 1);
    }
}
