//! Descriptive statistics on slices of `f64`.

use crate::error::{StatsError, StatsResult};

/// Arithmetic mean of a slice.
pub fn mean(values: &[f64]) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "mean" });
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Unbiased (sample) variance of a slice; requires at least two elements.
pub fn variance(values: &[f64]) -> StatsResult<f64> {
    if values.len() < 2 {
        return Err(StatsError::InvalidParameter {
            parameter: "values",
            message: format!(
                "sample variance needs at least 2 values, got {}",
                values.len()
            ),
        });
    }
    let m = mean(values)?;
    let sum_sq: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok(sum_sq / (values.len() - 1) as f64)
}

/// Population variance (dividing by `n` rather than `n − 1`).
pub fn population_variance(values: &[f64]) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "population_variance",
        });
    }
    let m = mean(values)?;
    let sum_sq: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok(sum_sq / values.len() as f64)
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> StatsResult<f64> {
    Ok(variance(values)?.sqrt())
}

/// Median of a slice.
pub fn median(values: &[f64]) -> StatsResult<f64> {
    quantile(values, 0.5)
}

/// Linear-interpolation quantile (type 7, the default of R and NumPy).
pub fn quantile(values: &[f64], q: f64) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "quantile",
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            parameter: "q",
            message: format!("quantile level must lie in [0, 1], got {q}"),
        });
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let position = q * (sorted.len() - 1) as f64;
    let lower = position.floor() as usize;
    let upper = position.ceil() as usize;
    if lower == upper {
        Ok(sorted[lower])
    } else {
        let fraction = position - lower as f64;
        Ok(sorted[lower] * (1.0 - fraction) + sorted[upper] * fraction)
    }
}

/// Minimum of a slice.
pub fn min(values: &[f64]) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "min" });
    }
    Ok(values.iter().cloned().fold(f64::INFINITY, f64::min))
}

/// Maximum of a slice.
pub fn max(values: &[f64]) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "max" });
    }
    Ok(values.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
}

/// Weighted arithmetic mean. Weights must be non-negative and not all zero.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "weighted_mean",
        });
    }
    if values.len() != weights.len() {
        return Err(StatsError::LengthMismatch {
            operation: "weighted_mean",
            left: values.len(),
            right: weights.len(),
        });
    }
    let total_weight: f64 = weights.iter().sum();
    if total_weight <= 0.0 {
        return Err(StatsError::InvalidParameter {
            parameter: "weights",
            message: "weights must sum to a positive value".to_string(),
        });
    }
    let weighted_sum: f64 = values.iter().zip(weights).map(|(v, w)| v * w).sum();
    Ok(weighted_sum / total_weight)
}

/// Geometric mean of strictly positive values.
pub fn geometric_mean(values: &[f64]) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "geometric_mean",
        });
    }
    if values.iter().any(|&v| v <= 0.0) {
        return Err(StatsError::InvalidParameter {
            parameter: "values",
            message: "geometric mean requires strictly positive values".to_string(),
        });
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Ok((log_sum / values.len() as f64).exp())
}

/// Summary statistics of a sample, computed in a single pass over sorted data.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `count < 2`).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Compute a five-number-plus summary of the given values.
    pub fn from_values(values: &[f64]) -> StatsResult<Self> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput {
                operation: "Summary::from_values",
            });
        }
        Ok(Summary {
            count: values.len(),
            mean: mean(values)?,
            std_dev: if values.len() >= 2 {
                std_dev(values)?
            } else {
                0.0
            },
            min: min(values)?,
            q1: quantile(values, 0.25)?,
            median: quantile(values, 0.5)?,
            q3: quantile(values, 0.75)?,
            max: max(values)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn mean_basic() {
        assert_close(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5, 1e-12);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_and_std_dev() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Known example: population variance 4, sample variance 32/7.
        assert_close(population_variance(&values).unwrap(), 4.0, 1e-12);
        assert_close(variance(&values).unwrap(), 32.0 / 7.0, 1e-12);
        assert_close(std_dev(&values).unwrap(), (32.0f64 / 7.0).sqrt(), 1e-12);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn median_even_and_odd() {
        assert_close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0, 1e-12);
        assert_close(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn quantile_interpolation() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_close(quantile(&values, 0.0).unwrap(), 1.0, 1e-12);
        assert_close(quantile(&values, 1.0).unwrap(), 5.0, 1e-12);
        assert_close(quantile(&values, 0.25).unwrap(), 2.0, 1e-12);
        assert_close(quantile(&values, 0.1).unwrap(), 1.4, 1e-12);
        assert!(quantile(&values, 1.5).is_err());
    }

    #[test]
    fn min_max() {
        let values = [3.0, -1.0, 7.0, 0.0];
        assert_close(min(&values).unwrap(), -1.0, 1e-15);
        assert_close(max(&values).unwrap(), 7.0, 1e-15);
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn weighted_mean_basic() {
        assert_close(
            weighted_mean(&[1.0, 2.0, 3.0], &[1.0, 1.0, 2.0]).unwrap(),
            2.25,
            1e-12,
        );
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn geometric_mean_basic() {
        assert_close(geometric_mean(&[1.0, 10.0, 100.0]).unwrap(), 10.0, 1e-10);
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }

    #[test]
    fn summary_five_numbers() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let s = Summary::from_values(&values).unwrap();
        assert_eq!(s.count, 9);
        assert_close(s.mean, 5.0, 1e-12);
        assert_close(s.min, 1.0, 1e-12);
        assert_close(s.median, 5.0, 1e-12);
        assert_close(s.max, 9.0, 1e-12);
        assert_close(s.q1, 3.0, 1e-12);
        assert_close(s.q3, 7.0, 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_values(&[42.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 42.0);
    }
}
