//! Ranking utilities with tie handling.

use crate::error::{StatsError, StatsResult};

/// How tied values are assigned ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieMethod {
    /// Tied values receive the average of the ranks they span (the convention
    /// required by the Spearman correlation used in the Stability criterion).
    Average,
    /// Tied values receive the smallest of the ranks they span.
    Min,
    /// Tied values receive the largest of the ranks they span.
    Max,
    /// Ties are broken by input order (first occurrence gets the lower rank).
    Ordinal,
}

/// Assign 1-based ranks to `values`, resolving ties according to `method`.
///
/// Returns an error when the input is empty or contains NaN.
pub fn rank(values: &[f64], method: TieMethod) -> StatsResult<Vec<f64>> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "rank" });
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(StatsError::InvalidParameter {
            parameter: "values",
            message: "cannot rank NaN values".to_string(),
        });
    }

    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN filtered above")
    });

    let mut ranks = vec![0.0; values.len()];
    let mut index = 0;
    while index < order.len() {
        // Find the run of tied values starting at `index`.
        let mut run_end = index + 1;
        while run_end < order.len() && values[order[run_end]] == values[order[index]] {
            run_end += 1;
        }
        // Ranks are 1-based: positions index..run_end correspond to ranks index+1..run_end.
        for (offset, &original) in order[index..run_end].iter().enumerate() {
            let position = index + offset;
            ranks[original] = match method {
                TieMethod::Average => (index + 1 + run_end) as f64 / 2.0,
                TieMethod::Min => (index + 1) as f64,
                TieMethod::Max => run_end as f64,
                TieMethod::Ordinal => (position + 1) as f64,
            };
        }
        index = run_end;
    }
    Ok(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        let ranks = rank(&[10.0, 30.0, 20.0], TieMethod::Average).unwrap();
        assert_eq!(ranks, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn average_ties() {
        // Two values tied for ranks 2 and 3 → both get 2.5.
        let ranks = rank(&[1.0, 5.0, 5.0, 9.0], TieMethod::Average).unwrap();
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn min_and_max_ties() {
        let values = [1.0, 5.0, 5.0, 9.0];
        assert_eq!(
            rank(&values, TieMethod::Min).unwrap(),
            vec![1.0, 2.0, 2.0, 4.0]
        );
        assert_eq!(
            rank(&values, TieMethod::Max).unwrap(),
            vec![1.0, 3.0, 3.0, 4.0]
        );
    }

    #[test]
    fn ordinal_ties_follow_input_order() {
        let ranks = rank(&[5.0, 5.0, 1.0], TieMethod::Ordinal).unwrap();
        assert_eq!(ranks, vec![2.0, 3.0, 1.0]);
    }

    #[test]
    fn all_equal_values() {
        let ranks = rank(&[7.0, 7.0, 7.0], TieMethod::Average).unwrap();
        assert_eq!(ranks, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(rank(&[], TieMethod::Average).is_err());
        assert!(rank(&[1.0, f64::NAN], TieMethod::Average).is_err());
    }

    #[test]
    fn ranks_are_a_permutation_sum() {
        // Sum of ranks must always equal n(n+1)/2 for Average ties.
        let values = [3.0, 3.0, 1.0, 8.0, 8.0, 8.0, 2.0];
        let ranks = rank(&values, TieMethod::Average).unwrap();
        let n = values.len() as f64;
        let total: f64 = ranks.iter().sum();
        assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }
}
