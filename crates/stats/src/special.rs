//! Special mathematical functions.
//!
//! These are the numerical building blocks for the probability distributions in
//! [`crate::distributions`]: the log-gamma function, the regularized incomplete
//! beta and gamma functions, the error function and binomial coefficients.
//!
//! All routines operate on `f64` and target roughly 1e-10 relative accuracy in
//! the parameter ranges exercised by the backboning algorithms.

use crate::error::{StatsError, StatsResult};

/// Machine epsilon-scale tolerance used by the continued fraction evaluations.
const CF_EPSILON: f64 = 1e-15;
/// Smallest representable magnitude used to avoid division by zero in Lentz's algorithm.
const CF_TINY: f64 = 1e-300;
/// Maximum number of continued fraction / series iterations before reporting failure.
const MAX_ITERATIONS: usize = 500;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to about
/// 1e-13 over the positive real axis.
///
/// # Panics
///
/// Panics if `x <= 0`, since the backboning code never evaluates the gamma
/// function at non-positive arguments; doing so indicates a logic error.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");

    // Lanczos coefficients for g = 7.
    const COEFFICIENTS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1 − x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFICIENTS[0];
        for (i, &c) in COEFFICIENTS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Natural logarithm of the beta function, `ln B(a, b)` for `a, b > 0`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns negative infinity when `k > n`, matching the convention that the
/// corresponding binomial probability is zero.
pub fn ln_binomial_coefficient(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Implemented with the power series for `x < a + 1` and the continued fraction
/// for larger `x` (Numerical Recipes style).
pub fn regularized_lower_gamma(a: f64, x: f64) -> StatsResult<f64> {
    if a <= 0.0 {
        return Err(StatsError::InvalidParameter {
            parameter: "a",
            message: format!("shape must be positive, got {a}"),
        });
    }
    if x < 0.0 {
        return Err(StatsError::InvalidParameter {
            parameter: "x",
            message: format!("argument must be non-negative, got {x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }

    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..MAX_ITERATIONS {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * CF_EPSILON {
                let ln_prefactor = -x + a * x.ln() - ln_gamma(a);
                return Ok((sum * ln_prefactor.exp()).clamp(0.0, 1.0));
            }
        }
        Err(StatsError::ConvergenceFailure {
            routine: "regularized_lower_gamma (series)",
            iterations: MAX_ITERATIONS,
        })
    } else {
        // Continued fraction for Q(a, x), then P = 1 − Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / CF_TINY;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..=MAX_ITERATIONS {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < CF_TINY {
                d = CF_TINY;
            }
            c = b + an / c;
            if c.abs() < CF_TINY {
                c = CF_TINY;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < CF_EPSILON {
                let ln_prefactor = -x + a * x.ln() - ln_gamma(a);
                let q = (ln_prefactor.exp() * h).clamp(0.0, 1.0);
                return Ok((1.0 - q).clamp(0.0, 1.0));
            }
        }
        Err(StatsError::ConvergenceFailure {
            routine: "regularized_lower_gamma (continued fraction)",
            iterations: MAX_ITERATIONS,
        })
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn regularized_upper_gamma(a: f64, x: f64) -> StatsResult<f64> {
    Ok(1.0 - regularized_lower_gamma(a, x)?)
}

/// Continued fraction used by [`regularized_incomplete_beta`] (Lentz's method).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> StatsResult<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < CF_TINY {
        d = CF_TINY;
    }
    d = 1.0 / d;
    let mut h = d;

    for m in 1..=MAX_ITERATIONS {
        let m = m as f64;
        let m2 = 2.0 * m;

        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < CF_TINY {
            d = CF_TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < CF_TINY {
            c = CF_TINY;
        }
        d = 1.0 / d;
        h *= d * c;

        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < CF_TINY {
            d = CF_TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < CF_TINY {
            c = CF_TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;

        if (delta - 1.0).abs() < CF_EPSILON {
            return Ok(h);
        }
    }
    Err(StatsError::ConvergenceFailure {
        routine: "beta_continued_fraction",
        iterations: MAX_ITERATIONS,
    })
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and `x ∈ [0, 1]`.
///
/// This is the CDF of the Beta distribution and (through a standard identity)
/// the CDF of the Binomial distribution, both of which are central to the
/// Noise-Corrected backbone's null model.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> StatsResult<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::InvalidParameter {
            parameter: "a/b",
            message: format!("shape parameters must be positive, got a={a}, b={b}"),
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            parameter: "x",
            message: format!("argument must lie in [0, 1], got {x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }

    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();

    // Use the symmetry relation to keep the continued fraction well behaved.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((front * beta_continued_fraction(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - front * beta_continued_fraction(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

/// Error function `erf(x)`.
///
/// Computed through the regularized lower incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = regularized_lower_gamma(0.5, x * x)
        .expect("regularized_lower_gamma(0.5, x^2) is always well defined");
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function), `Φ⁻¹(p)`.
///
/// Uses Acklam's rational approximation followed by one Halley refinement step,
/// giving roughly 1e-15 relative accuracy on `(0, 1)`.
///
/// Returns an error for `p` outside the open interval `(0, 1)`.
pub fn standard_normal_quantile(p: f64) -> StatsResult<f64> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        return Err(StatsError::InvalidParameter {
            parameter: "p",
            message: format!("probability must lie strictly inside (0, 1), got {p}"),
        });
    }

    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method for refinement.
    let e = standard_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tolerance: f64) {
        assert!(
            (actual - expected).abs() <= tolerance,
            "expected {expected}, got {actual} (tolerance {tolerance})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        assert_close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = sqrt(pi) / 2
        assert_close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_beta_matches_known_values() {
        // B(1, 1) = 1
        assert_close(ln_beta(1.0, 1.0), 0.0, 1e-12);
        // B(2, 3) = 1/12
        assert_close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-12);
    }

    #[test]
    fn ln_binomial_coefficient_small_values() {
        assert_close(ln_binomial_coefficient(5, 2), (10.0f64).ln(), 1e-12);
        assert_close(ln_binomial_coefficient(10, 5), (252.0f64).ln(), 1e-10);
        assert_eq!(ln_binomial_coefficient(3, 5), f64::NEG_INFINITY);
        assert_close(ln_binomial_coefficient(7, 0), 0.0, 1e-15);
        assert_close(ln_binomial_coefficient(7, 7), 0.0, 1e-15);
    }

    #[test]
    fn incomplete_gamma_limits() {
        assert_close(regularized_lower_gamma(2.0, 0.0).unwrap(), 0.0, 1e-15);
        assert_close(regularized_lower_gamma(2.0, 1e6).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            assert_close(
                regularized_lower_gamma(1.0, x).unwrap(),
                1.0 - (-x).exp(),
                1e-10,
            );
        }
    }

    #[test]
    fn incomplete_gamma_rejects_bad_parameters() {
        assert!(regularized_lower_gamma(-1.0, 1.0).is_err());
        assert!(regularized_lower_gamma(1.0, -1.0).is_err());
    }

    #[test]
    fn incomplete_beta_limits() {
        assert_close(
            regularized_incomplete_beta(2.0, 3.0, 0.0).unwrap(),
            0.0,
            1e-15,
        );
        assert_close(
            regularized_incomplete_beta(2.0, 3.0, 1.0).unwrap(),
            1.0,
            1e-15,
        );
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_close(regularized_incomplete_beta(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.2), (10.0, 3.0, 0.7)] {
            let left = regularized_incomplete_beta(a, b, x).unwrap();
            let right = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x).unwrap();
            assert_close(left, right, 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry of Beta(2,2).
        assert_close(
            regularized_incomplete_beta(2.0, 2.0, 0.5).unwrap(),
            0.5,
            1e-12,
        );
        // Beta(2, 1) has CDF x^2.
        assert_close(
            regularized_incomplete_beta(2.0, 1.0, 0.3).unwrap(),
            0.09,
            1e-12,
        );
    }

    #[test]
    fn incomplete_beta_rejects_bad_parameters() {
        assert!(regularized_incomplete_beta(0.0, 1.0, 0.5).is_err());
        assert!(regularized_incomplete_beta(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-9);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-9);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-9);
        assert_close(erfc(1.0), 1.0 - 0.842_700_792_949_714_9, 1e-9);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert_close(standard_normal_cdf(0.0), 0.5, 1e-12);
        assert_close(standard_normal_cdf(1.96), 0.975_002_104_851_780, 1e-7);
        assert_close(
            standard_normal_cdf(-1.96),
            1.0 - 0.975_002_104_851_780,
            1e-7,
        );
        assert_close(standard_normal_cdf(1.281_551_565_5), 0.9, 1e-7);
    }

    #[test]
    fn normal_quantile_round_trips_cdf() {
        for &p in &[
            0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999,
        ] {
            let x = standard_normal_quantile(p).unwrap();
            assert_close(standard_normal_cdf(x), p, 1e-10);
        }
    }

    #[test]
    fn normal_quantile_common_significance_levels() {
        // The paper's suggested δ values: 1.28, 1.64, 2.32 for p = 0.1, 0.05, 0.01.
        assert_close(
            standard_normal_quantile(0.90).unwrap(),
            1.281_551_565_5,
            1e-6,
        );
        assert_close(
            standard_normal_quantile(0.95).unwrap(),
            1.644_853_626_9,
            1e-6,
        );
        assert_close(
            standard_normal_quantile(0.99).unwrap(),
            2.326_347_874_0,
            1e-6,
        );
    }

    #[test]
    fn normal_quantile_rejects_boundaries() {
        assert!(standard_normal_quantile(0.0).is_err());
        assert!(standard_normal_quantile(1.0).is_err());
        assert!(standard_normal_quantile(-0.1).is_err());
    }
}
