//! Seeded random sampling utilities.
//!
//! The synthetic dataset generators need normal, binomial and Poisson samples
//! that are deterministic given a seed. The `rand` crate (on the workspace's
//! approved dependency list) provides uniform sampling; the transformations to
//! other distributions are implemented here so that no additional sampling
//! crates are required.

use rand::Rng;

/// Draw a standard normal sample using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln(u1) to -inf.
    let u1: f64 = loop {
        let candidate: f64 = rng.random();
        if candidate > f64::MIN_POSITIVE {
            break candidate;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw a normal sample with the given mean and standard deviation.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * sample_standard_normal(rng)
}

/// Draw a Poisson sample with mean `lambda`.
///
/// Uses Knuth's multiplication method for small means and a clamped normal
/// approximation for large means (where the relative error of the
/// approximation is negligible for our synthetic-data purposes).
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0,
        "Poisson mean must be non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        // Normal approximation with continuity correction.
        let sample = sample_normal(rng, lambda, lambda.sqrt());
        sample.round().max(0.0) as u64
    }
}

/// Draw a binomial sample `Bin(n, p)`.
///
/// Uses direct Bernoulli summation for small `n`, and a Poisson or normal
/// approximation for large `n` depending on the regime.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0, 1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= 64 {
        let mut successes = 0u64;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                successes += 1;
            }
        }
        successes
    } else {
        let mean = n as f64 * p;
        let variance = mean * (1.0 - p);
        if mean < 30.0 {
            // Rare-event regime: Poisson approximation.
            sample_poisson(rng, mean).min(n)
        } else if n as f64 - mean < 30.0 {
            // Near-certain regime: sample the failures instead.
            n - sample_poisson(rng, n as f64 - mean).min(n)
        } else {
            // Bulk regime: normal approximation.
            let sample = sample_normal(rng, mean, variance.sqrt());
            sample.round().clamp(0.0, n as f64) as u64
        }
    }
}

/// Draw a sample from a (continuous) power-law distribution with exponent
/// `alpha > 1` and lower cutoff `x_min > 0`, via inverse transform sampling.
///
/// Used to generate broadly distributed edge weights matching the heavy-tailed
/// distributions documented in Figure 5 of the paper.
pub fn sample_power_law<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0, "x_min must be positive, got {x_min}");
    assert!(alpha > 1.0, "alpha must exceed 1, got {alpha}");
    let u: f64 = loop {
        let candidate: f64 = rng.random();
        if candidate < 1.0 {
            break candidate;
        }
    };
    x_min * (1.0 - u).powf(-1.0 / (alpha - 1.0))
}

/// Draw a log-normal sample with the given parameters of the underlying normal.
pub fn sample_log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    sample_normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_cafe)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..50_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!(
            (variance - 1.0).abs() < 0.05,
            "variance {variance} too far from 1"
        );
    }

    #[test]
    fn normal_respects_location_and_scale() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 10.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = rng();
        let lambda = 3.5;
        let samples: Vec<u64> = (0..30_000)
            .map(|_| sample_poisson(&mut rng, lambda))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approximation() {
        let mut rng = rng();
        let lambda = 500.0;
        let samples: Vec<u64> = (0..5_000)
            .map(|_| sample_poisson(&mut rng, lambda))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = rng();
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn binomial_small_n() {
        let mut rng = rng();
        let samples: Vec<u64> = (0..20_000)
            .map(|_| sample_binomial(&mut rng, 20, 0.3))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|&s| s <= 20));
    }

    #[test]
    fn binomial_large_n_bulk() {
        let mut rng = rng();
        let samples: Vec<u64> = (0..5_000)
            .map(|_| sample_binomial(&mut rng, 10_000, 0.4))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 4000.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn binomial_large_n_rare() {
        let mut rng = rng();
        let samples: Vec<u64> = (0..20_000)
            .map(|_| sample_binomial(&mut rng, 1_000_000, 1e-5))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_degenerate_cases() {
        let mut rng = rng();
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn power_law_respects_cutoff() {
        let mut rng = rng();
        for _ in 0..10_000 {
            let sample = sample_power_law(&mut rng, 2.0, 2.5);
            assert!(sample >= 2.0);
            assert!(sample.is_finite());
        }
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..50_000)
            .map(|_| sample_power_law(&mut rng, 1.0, 2.2))
            .collect();
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let median = {
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted[sorted.len() / 2]
        };
        // Heavy tail: the maximum is orders of magnitude above the median.
        assert!(max / median > 100.0);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = rng();
        for _ in 0..1_000 {
            assert!(sample_log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let a: Vec<u64> = (0..100).map(|_| sample_poisson(&mut rng_a, 10.0)).collect();
        let b: Vec<u64> = (0..100).map(|_| sample_poisson(&mut rng_b, 10.0)).collect();
        assert_eq!(a, b);
    }
}
