//! Minimal, dependency-free stand-in for the parts of the `rand` 0.9 API this
//! workspace uses. The build environment has no access to a crates.io mirror,
//! so the handful of entry points the workspace needs are vendored here:
//!
//! - [`rngs::StdRng`] — a xoshiro256** generator seeded via SplitMix64
//! - [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`]
//! - [`SeedableRng::seed_from_u64`]
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! The generator is deterministic for a given seed, which is exactly what the
//! reproduction harness wants: every figure and table is re-derivable.

#![forbid(unsafe_code)]

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // u64 domain, which the integer widths here cannot produce.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + (m >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// Convenience methods available on every random number generator.
pub trait Rng: RngCore {
    /// Draws one value of a [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
