//! Minimal, dependency-free stand-in for the parts of the `criterion` API the
//! workspace's benches use. The build environment has no access to a crates.io
//! mirror, so this vendored harness provides the same surface — groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Throughput`],
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with a
//! simple wall-clock timing loop instead of criterion's statistical engine.
//!
//! Behavior:
//! - `cargo bench` runs each registered benchmark for up to `sample_size`
//!   timed iterations (bounded by a per-benchmark time budget) and prints the
//!   mean wall-clock time per iteration.
//! - With `--test` on the command line (what `cargo test --benches` passes),
//!   every benchmark body runs exactly once so the suite stays fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `method/size`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark (recorded, echoed in the report).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    config: &'a RunConfig,
    report: Option<Sample>,
}

struct Sample {
    total: Duration,
    iterations: u32,
}

impl Bencher<'_> {
    /// Runs `payload` repeatedly, recording the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        if self.config.test_mode {
            black_box(payload());
            self.report = Some(Sample {
                total: Duration::ZERO,
                iterations: 1,
            });
            return;
        }
        // One untimed warmup, then up to `sample_size` timed iterations
        // bounded by the per-benchmark time budget.
        black_box(payload());
        let budget = self.config.measurement_time;
        let mut total = Duration::ZERO;
        let mut iterations = 0u32;
        while iterations < self.config.sample_size && total < budget {
            let start = Instant::now();
            black_box(payload());
            total += start.elapsed();
            iterations += 1;
        }
        self.report = Some(Sample { total, iterations });
    }
}

#[derive(Clone)]
struct RunConfig {
    test_mode: bool,
    sample_size: u32,
    measurement_time: Duration,
    filter: Option<String>,
}

impl RunConfig {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo passes to harness=false benches; ignore them.
                "--bench" | "--nocapture" | "--quiet" | "-q" | "--exact" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        RunConfig {
            test_mode,
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            filter,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    config: RunConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: RunConfig::from_args(),
        }
    }
}

impl Criterion {
    /// Reads command-line arguments (`--test`, name filters). Already done by
    /// `Default`; kept for API parity with real criterion.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.config.clone(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers and runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut body: F) {
        run_one(&self.config, id, |bencher| body(bencher));
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: RunConfig,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1) as u32;
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.config.measurement_time = budget;
        self
    }

    /// Records the work-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Registers and runs one benchmark in this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        mut body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.config, &full, |bencher| body(bencher));
        self
    }

    /// Registers and runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher<'_>, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.config, &full, |bencher| body(bencher, input));
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

fn run_one(config: &RunConfig, id: &str, mut body: impl FnMut(&mut Bencher<'_>)) {
    if !config.matches(id) {
        return;
    }
    let mut bencher = Bencher {
        config,
        report: None,
    };
    body(&mut bencher);
    match bencher.report {
        Some(_) if config.test_mode => println!("test {id} ... ok"),
        Some(sample) => {
            let mean = sample.total.as_secs_f64() / f64::from(sample.iterations.max(1));
            println!(
                "{id}: {:.3} ms/iter ({} iterations)",
                mean * 1e3,
                sample.iterations
            );
        }
        None => println!("{id}: no measurement recorded"),
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
