//! Minimal, dependency-free stand-in for the parts of the `proptest` API this
//! workspace uses. The build environment has no access to a crates.io mirror,
//! so the needed surface is vendored here:
//!
//! - [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges,
//!   tuples of strategies, and [`collection::vec`]
//! - the [`proptest!`] macro (with `#![proptest_config(...)]` support)
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`]
//! - [`test_runner::ProptestConfig`]
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! case number and the deterministic seed, which is enough to replay it.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG driving strategy generation.
    pub type TestRng = StdRng;

    /// Builds the deterministic RNG for a property-test run.
    pub fn new_test_rng(seed: u64) -> TestRng {
        use rand::SeedableRng;
        StdRng::seed_from_u64(seed)
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// A number-of-elements specification: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration and error plumbing.

    /// How a property test should run.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Seed for the deterministic RNG driving generation.
        pub rng_seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                rng_seed: 0x5eed_cafe,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given description.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs one generated case. Exists so the generated tuple's concrete type is
/// pinned before the body closure is type-checked (direct immediate closure
/// invocation would leave the closure's pattern parameters uninferred).
#[doc(hidden)]
pub fn __run_case<V, F>(value: V, body: F) -> Result<(), test_runner::TestCaseError>
where
    F: FnOnce(V) -> Result<(), test_runner::TestCaseError>,
{
    body(value)
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Declares property tests: each `#[test] fn name(pattern in strategy, ...)`
/// runs `config.cases` generated inputs. Write the `#[test]` attribute
/// explicitly (it is passed through, not synthesized).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng: $crate::strategy::TestRng =
                $crate::strategy::new_test_rng(config.rng_seed);
            for case in 0..config.cases {
                let values = ($($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+);
                let outcome = $crate::__run_case(values, |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(error) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        config.cases,
                        config.rng_seed,
                        error.message
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
