//! Meta-tests: the vendored harness must actually fail failing properties.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn passing_property_passes(x in 0usize..100) {
        prop_assert!(x < 100);
    }

    #[test]
    fn tuples_vecs_and_maps_compose(
        pairs in proptest::collection::vec(((0usize..5), (0.0f64..1.0)), 1..20),
        scale in 1.0f64..10.0,
    ) {
        let scaled: Vec<f64> = pairs.iter().map(|(_, w)| w * scale).collect();
        prop_assert_eq!(scaled.len(), pairs.len());
        for value in scaled {
            prop_assert!((0.0..10.0).contains(&value));
        }
    }
}

#[test]
fn failing_property_panics() {
    // Run the generated test fn through catch_unwind: a harness that silently
    // swallows failures would make every property test in the workspace
    // meaningless.
    proptest! {
        #[allow(dead_code)]
        fn always_fails(x in 0usize..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
    let result = std::panic::catch_unwind(always_fails);
    assert!(result.is_err(), "a failing property must panic the test");
    let message = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(
        message.contains("proptest case") && message.contains("seed"),
        "failure message must identify the case and seed, got: {message}"
    );
}

#[test]
fn generation_is_deterministic_across_runs() {
    let mut rng_a = proptest::strategy::new_test_rng(7);
    let mut rng_b = proptest::strategy::new_test_rng(7);
    let strategy = proptest::collection::vec(0usize..1000, 5..20);
    for _ in 0..10 {
        assert_eq!(strategy.generate(&mut rng_a), strategy.generate(&mut rng_b));
    }
}
