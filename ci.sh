#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> perf smoke: bench_snapshot -> BENCH_backbones.json"
cargo run --release -p backboning_bench --bin bench_snapshot

echo "==> OK"
