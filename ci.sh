#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> docs check: md_check (fenced sh blocks parse, intra-repo links resolve)"
cargo run --release -p backboning_bench --bin md_check

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> perf smoke: bench_snapshot -> BENCH_backbones.json"
# BENCH_SCALE=full adds the million-node substrates (that mode produces the
# committed BENCH_backbones.json); the default keeps the smoke budget.
cargo run --release -p backboning_bench --bin bench_snapshot

echo "==> large-substrate smoke: 100k-node BA through score -> select (180 s budget)"
SMOKE_TSV=$(mktemp --suffix .tsv)
cleanup_smoke() { rm -f "$SMOKE_TSV"; }
trap cleanup_smoke EXIT
cargo run --release -p backboning_bench --bin gen_substrate -- ba 100000 3 4242 "$SMOKE_TSV"
SMOKE_SUMMARY=$(timeout 180 ./target/release/backbone --method nc --top-share 0.1 \
    --undirected -o summary "$SMOKE_TSV")
echo "$SMOKE_SUMMARY" | grep -q '"nodes": 100000'
echo "$SMOKE_SUMMARY" | grep -q '"method": "nc"'

# hss-approx smoke: the sampled-root estimator serves the same 100k
# substrate inside the same budget (256 roots, default seed).
SMOKE_HSSA=$(timeout 180 ./target/release/backbone --method hss-approx --hss-roots 256 \
    --top-share 0.05 --undirected -o summary "$SMOKE_TSV")
echo "$SMOKE_HSSA" | grep -q '"method": "hss-approx"'
echo "$SMOKE_HSSA" | grep -q '"hss_roots": 256'
cleanup_smoke
trap - EXIT

echo "==> timings smoke: --timings prints a stage table to stderr only"
TIMINGS_OUT=$(./target/release/backbone --method nc --top-k 5 --undirected --timings \
    -o summary docs/examples/trade.tsv 2>/dev/null)
TIMINGS_ERR=$(./target/release/backbone --method nc --top-k 5 --undirected --timings \
    -o summary docs/examples/trade.tsv 2>&1 >/dev/null)
echo "$TIMINGS_OUT" | grep -q '"stage_ms": { "score": '
echo "$TIMINGS_ERR" | grep -q '^ingest'
echo "$TIMINGS_ERR" | grep -q '^score'
echo "$TIMINGS_ERR" | grep -q '^total'
# stdout stays pure pipeline output: no table rows leak into it.
if echo "$TIMINGS_OUT" | grep -q '^total'; then exit 1; fi

echo "==> gen smoke: backbone gen | backbone nc"
# A community-structured scenario straight through the pipeline, by pipe.
GEN_SPEC='sb:n=5000,b=8,pin=0.02,pout=0.0008,w=lognormal(0,1),noise=0.1,seed=4242'
GEN_SUMMARY=$(./target/release/backbone gen "$GEN_SPEC" \
    | ./target/release/backbone --method nc --top-share 0.1 --undirected -o summary)
echo "$GEN_SUMMARY" | grep -q '"method": "nc"'
echo "$GEN_SUMMARY" | grep -q '"nodes": 5000'
# Same spec, same bytes: the gen output hashes identically across runs.
GEN_HASH_A=$(./target/release/backbone gen "$GEN_SPEC" | sha256sum)
GEN_HASH_B=$(./target/release/backbone gen "$GEN_SPEC" | sha256sum)
[ "$GEN_HASH_A" = "$GEN_HASH_B" ]

echo "==> bench-matrix smoke: 3-cell sweep, rows parse and are run-stable"
MATRIX_A=$(mktemp --suffix .json)
MATRIX_B=$(mktemp --suffix .json)
cleanup_matrix() { rm -f "$MATRIX_A" "$MATRIX_B"; }
trap cleanup_matrix EXIT
MATRIX_SPECS='ba:n=2000,m=3,seed=4242;geo:n=2000,r=0.04,w=powerlaw(2.5),seed=4242;sb:n=2000,b=8,pin=0.01,pout=0.0004,w=lognormal(0,1),seed=4242'
./target/release/backbone bench-matrix --specs "$MATRIX_SPECS" --methods nc \
    --runs 1 --out "$MATRIX_A" | grep -q '3 cell(s) swept'
./target/release/backbone bench-matrix --specs "$MATRIX_SPECS" --methods nc \
    --runs 1 --out "$MATRIX_B" >/dev/null
# The appended rows parse (one per cell, keyed by spec) ...
[ "$(grep -c '"spec": ' "$MATRIX_A")" = "3" ]
grep -q '"backbone_hash": "' "$MATRIX_A"
# ... and are byte-identical across runs once the timing fields are
# stripped (same sed idiom as the compare smoke above).
MATRIX_A_STABLE=$(sed 's/, "median_ms": [0-9.]*//g; s/, "edges_per_sec": [0-9.]*//g' "$MATRIX_A")
MATRIX_B_STABLE=$(sed 's/, "median_ms": [0-9.]*//g; s/, "edges_per_sec": [0-9.]*//g' "$MATRIX_B")
[ "$MATRIX_A_STABLE" = "$MATRIX_B_STABLE" ]
cleanup_matrix
trap - EXIT

echo "==> server smoke: backbone serve"
SERVE_PORT="${SERVE_PORT:-48170}"
SERVE_URL="http://127.0.0.1:${SERVE_PORT}"
./target/release/backbone serve --addr "127.0.0.1:${SERVE_PORT}" \
    --graphs docs/examples --undirected &
SERVE_PID=$!
cleanup_server() {
    if kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
}
trap cleanup_server EXIT

# Wait for the listener (the health route answers once the pool is up).
for _ in $(seq 1 50); do
    if curl -sf "${SERVE_URL}/health" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "${SERVE_URL}/health" | grep -q '"status": "ok"'

# A real backbone query on the bundled example graph, validated as JSON.
SUMMARY=$(curl -sf "${SERVE_URL}/graphs/trade/backbone?method=nc&top_share=0.2&output=summary")
echo "$SUMMARY" | grep -q '"method": "nc"'
echo "$SUMMARY" | grep -q '"kind": "top_share"'
echo "$SUMMARY" | grep -q '"graph": "trade"'
# A cached re-query must return the identical bytes.
SUMMARY_CACHED=$(curl -sf "${SERVE_URL}/graphs/trade/backbone?method=nc&top_share=0.2&output=summary")
[ "$SUMMARY" = "$SUMMARY_CACHED" ]

# Compare smoke: the CLI's JSON report minus its per-method score_wall_ms
# timing (the one run-dependent field) and the server's /compare route must
# emit byte-identical documents, cold and from cache.
COMPARE_CLI=$(./target/release/backbone compare --methods nc,df,hss \
    --top-share 0.1 --undirected -o json docs/examples/trade.tsv)
echo "$COMPARE_CLI" | grep -q '"matched_edges": 3'
echo "$COMPARE_CLI" | grep -q '"noise_stability"'
echo "$COMPARE_CLI" | grep -q '"score_wall_ms"'
COMPARE_CLI_STABLE=$(echo "$COMPARE_CLI" | sed 's/, "score_wall_ms": [0-9.]*//g')
COMPARE_SERVER=$(curl -sf "${SERVE_URL}/graphs/trade/compare")
[ "$COMPARE_CLI_STABLE" = "$COMPARE_SERVER" ]
COMPARE_CACHED=$(curl -sf "${SERVE_URL}/graphs/trade/compare")
[ "$COMPARE_SERVER" = "$COMPARE_CACHED" ]

# Observability smoke: /metrics serves both formats, /health exposes the
# cache counters, and a concurrent loadtest burst cross-checks the server's
# request counts and latency quantiles against the client side — with
# byte-identity asserted on every cached backbone response under load.
curl -sf "${SERVE_URL}/metrics" | grep -q '# TYPE http_requests_total counter'
curl -sf "${SERVE_URL}/metrics" | grep -q 'http_request_duration_seconds{method="GET",route="/graphs/{name}/backbone",quantile="0.5"}'
curl -sf "${SERVE_URL}/metrics?format=json" | grep -q '"name": "http_requests_total"'
curl -sf "${SERVE_URL}/health" | grep -q '"cache": { "scored": { "hits": '
./target/release/backbone_loadtest --addr "127.0.0.1:${SERVE_PORT}" --graph trade \
    --clients 4 --requests 25 | grep -q 'cross-checks passed'

# PATCH smoke: upload a generated substrate, ship a 3-edge delta, and pin
# that the cached backbone both *changes* and lands byte-identical to a
# fresh CLI run over the offline-patched edge list.
PATCH_TSV=$(mktemp --suffix .tsv)
PATCH_DELTA=$(mktemp --suffix .tsv)
PATCH_OUT=$(mktemp --suffix .tsv)
cleanup_patch() { rm -f "$PATCH_TSV" "$PATCH_DELTA" "$PATCH_OUT"; cleanup_server; }
trap cleanup_patch EXIT
./target/release/backbone gen 'ba:n=500,m=3,w=powerlaw(2.5),noise=0.1,seed=4242' > "$PATCH_TSV"
curl -sf -X POST --data-binary @"$PATCH_TSV" "${SERVE_URL}/graphs/patch-smoke" \
    | grep -q '"generation": 0'
PATCH_BEFORE=$(curl -sf "${SERVE_URL}/graphs/patch-smoke/backbone?method=nc&top_share=0.1")
printf 'reweight 0 2 30\nadd 0 499 8\nremove 3 11\n' > "$PATCH_DELTA"
PATCH_RESP=$(curl -sf -X PATCH --data-binary @"$PATCH_DELTA" "${SERVE_URL}/graphs/patch-smoke")
echo "$PATCH_RESP" | grep -q '"generation": 1'
echo "$PATCH_RESP" | grep -q '"applied": { "added": 1, "removed": 1, "reweighted": 1 }'
echo "$PATCH_RESP" | grep -q '"rescored_methods": \["nc"\]'
PATCH_AFTER=$(curl -sf "${SERVE_URL}/graphs/patch-smoke/backbone?method=nc&top_share=0.1")
[ "$PATCH_BEFORE" != "$PATCH_AFTER" ]
./target/release/backbone patch "$PATCH_DELTA" "$PATCH_TSV" --undirected > "$PATCH_OUT"
PATCH_FRESH=$(./target/release/backbone --method nc --top-share 0.1 --undirected "$PATCH_OUT")
[ "$PATCH_AFTER" = "$PATCH_FRESH" ]
curl -sf -X DELETE "${SERVE_URL}/graphs/patch-smoke" >/dev/null
rm -f "$PATCH_TSV" "$PATCH_DELTA" "$PATCH_OUT"
trap cleanup_server EXIT

# Churn soak: race concurrent PATCH writers against backbone readers and
# assert every read equals the from-scratch output of a reachable state
# (no torn reads), with the generation counter and /metrics cross-checked.
./target/release/backbone_loadtest --addr "127.0.0.1:${SERVE_PORT}" --churn \
    --clients 4 --requests 25 | grep -q 'churn cross-checks passed'

# Clean shutdown via the control path; SIGTERM (see cleanup_server) is the
# fallback if the route ever breaks.
curl -sf -X POST "${SERVE_URL}/shutdown" | grep -q 'shutting down'
wait "$SERVE_PID"
trap - EXIT

echo "==> OK"
